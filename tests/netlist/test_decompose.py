"""Tests for MST decomposition of multi-pin nets."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point
from repro.netlist import Net, decompose_to_two_pin, mst_edges


def _total_length(points, edges):
    return sum(points[i].manhattan_distance(points[j]) for i, j in edges)


class TestMstEdges:
    def test_empty_and_single(self):
        assert mst_edges([]) == []
        assert mst_edges([Point(0, 0)]) == []

    def test_two_points(self):
        assert mst_edges([Point(0, 0), Point(5, 5)]) == [(0, 1)]

    def test_collinear_chain(self):
        points = [Point(0, 0), Point(10, 0), Point(20, 0), Point(30, 0)]
        edges = mst_edges(points)
        assert sorted(edges) == [(0, 1), (1, 2), (2, 3)]

    def test_star_center(self):
        center = Point(0, 0)
        leaves = [Point(10, 0), Point(0, 10), Point(-10, 0), Point(0, -10)]
        edges = mst_edges([center] + leaves)
        assert sorted(edges) == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_edge_count(self):
        points = [Point(i * 3.1, (i * 7) % 5) for i in range(9)]
        assert len(mst_edges(points)) == 8

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=2,
            max_size=10,
            unique=True,
        )
    )
    def test_spanning_and_optimal_vs_bruteforce_chain(self, coords):
        points = [Point(x, y) for x, y in coords]
        edges = mst_edges(points)
        # Tree: n-1 edges, connects everything.
        assert len(edges) == len(points) - 1
        parent = list(range(len(points)))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, j in edges:
            ri, rj = find(i), find(j)
            assert ri != rj, "MST contains a cycle"
            parent[ri] = rj
        assert len({find(i) for i in range(len(points))}) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=2,
            max_size=7,
            unique=True,
        )
    )
    def test_no_single_swap_improves(self, coords):
        # Local optimality: replacing any MST edge with any non-edge
        # that reconnects the tree never shortens it (cut property
        # spot-check; full optimality needs matroid machinery).
        points = [Point(x, y) for x, y in coords]
        edges = mst_edges(points)
        base = _total_length(points, edges)
        import itertools

        all_pairs = list(itertools.combinations(range(len(points)), 2))
        for removed in edges:
            rest = [e for e in edges if e != removed]
            for candidate in all_pairs:
                if candidate in rest:
                    continue
                trial = rest + [candidate]
                if _is_spanning_tree(trial, len(points)):
                    assert _total_length(points, trial) >= base - 1e-9


def _is_spanning_tree(edges, n):
    if len(edges) != n - 1:
        return False
    parent = list(range(n))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, j in edges:
        ri, rj = find(i), find(j)
        if ri == rj:
            return False
        parent[ri] = rj
    return True


class TestDecompose:
    def test_two_pin_passthrough(self):
        net = Net("n", ("a", "b"), weight=3.0)
        locations = {"a": Point(0, 0), "b": Point(5, 5)}
        out = decompose_to_two_pin(net, locations)
        assert len(out) == 1
        assert out[0].weight == 3.0
        assert out[0].source_net == "n"
        assert out[0].name == "n#0"

    def test_multi_pin_count(self):
        net = Net("n", ("a", "b", "c", "d"))
        locations = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(0, 10),
            "d": Point(10, 10),
        }
        out = decompose_to_two_pin(net, locations)
        assert len(out) == 3

    def test_coincident_pins_yield_degenerate_edge(self):
        net = Net("n", ("a", "b"))
        locations = {"a": Point(3, 3), "b": Point(3, 3)}
        out = decompose_to_two_pin(net, locations)
        assert len(out) == 1
        assert out[0].manhattan_length == 0.0

    def test_missing_location_raises(self):
        net = Net("n", ("a", "b"))
        with pytest.raises(KeyError):
            decompose_to_two_pin(net, {"a": Point(0, 0)})

    def test_total_length_at_most_star(self):
        # MST is never longer than the star through any chosen hub.
        net = Net("n", ("a", "b", "c", "d", "e"))
        locations = {
            "a": Point(0, 0),
            "b": Point(7, 2),
            "c": Point(1, 9),
            "d": Point(4, 4),
            "e": Point(9, 9),
        }
        out = decompose_to_two_pin(net, locations)
        mst_len = sum(e.manhattan_length for e in out)
        for hub in net.terminals:
            star_len = sum(
                locations[hub].manhattan_distance(locations[t])
                for t in net.terminals
                if t != hub
            )
            assert mst_len <= star_len + 1e-9


class TestStarDecomposition:
    def test_edge_count(self):
        from repro.netlist import star_decomposition

        net = Net("n", ("a", "b", "c", "d"))
        locations = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(0, 10),
            "d": Point(10, 10),
        }
        out = star_decomposition(net, locations)
        assert len(out) == 3
        assert all(e.source_net == "n" for e in out)

    def test_hub_is_one_median(self):
        from repro.netlist import star_decomposition

        # The central pin must be the hub: every edge touches it.
        net = Net("n", ("hub", "l1", "l2", "l3"))
        locations = {
            "hub": Point(5, 5),
            "l1": Point(0, 5),
            "l2": Point(10, 5),
            "l3": Point(5, 0),
        }
        out = star_decomposition(net, locations)
        center = locations["hub"]
        for edge in out:
            assert center in (edge.p1, edge.p2)

    def test_star_never_shorter_than_mst(self):
        from repro.netlist import star_decomposition

        net = Net("n", ("a", "b", "c", "d", "e"))
        locations = {
            "a": Point(0, 0),
            "b": Point(9, 1),
            "c": Point(2, 8),
            "d": Point(7, 7),
            "e": Point(4, 3),
        }
        star_len = sum(
            e.manhattan_length for e in star_decomposition(net, locations)
        )
        mst_len = sum(
            e.manhattan_length for e in decompose_to_two_pin(net, locations)
        )
        assert star_len >= mst_len - 1e-9

    def test_missing_location_raises(self):
        from repro.netlist import star_decomposition

        with pytest.raises(KeyError):
            star_decomposition(Net("n", ("a", "b")), {"a": Point(0, 0)})
