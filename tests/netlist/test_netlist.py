"""Tests for the Netlist container."""

import pytest

from repro.netlist import Module, Net, Netlist


def small_netlist():
    modules = [Module("a", 10, 10), Module("b", 20, 10), Module("c", 5, 5)]
    nets = [Net("n0", ("a", "b")), Net("n1", ("a", "b", "c"), weight=2.0)]
    return Netlist("small", modules, nets)


class TestConstruction:
    def test_basic(self):
        nl = small_netlist()
        assert nl.n_modules == 3
        assert nl.n_nets == 2
        assert nl.total_module_area == 100 + 200 + 25
        assert nl.n_pins == 5

    def test_duplicate_module_rejected(self):
        with pytest.raises(ValueError):
            Netlist("x", [Module("a", 1, 1), Module("a", 2, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Netlist("x", [])

    def test_dangling_terminal_rejected(self):
        with pytest.raises(ValueError):
            Netlist("x", [Module("a", 1, 1), Module("b", 1, 1)], [Net("n", ("a", "z"))])

    def test_duplicate_net_rejected(self):
        nl = small_netlist()
        with pytest.raises(ValueError):
            nl.add_net(Net("n0", ("a", "c")))


class TestAccess:
    def test_module_lookup(self):
        nl = small_netlist()
        assert nl.module("b").width == 20
        with pytest.raises(KeyError):
            nl.module("nope")

    def test_net_lookup(self):
        nl = small_netlist()
        assert nl.net("n1").weight == 2.0
        with pytest.raises(KeyError):
            nl.net("nope")

    def test_nets_of_module(self):
        nl = small_netlist()
        assert [n.name for n in nl.nets_of_module("c")] == ["n1"]
        assert [n.name for n in nl.nets_of_module("a")] == ["n0", "n1"]
        with pytest.raises(KeyError):
            nl.nets_of_module("zz")

    def test_deterministic_order(self):
        nl = small_netlist()
        assert nl.module_names == ("a", "b", "c")
        assert [n.name for n in nl.nets] == ["n0", "n1"]

    def test_degree_histogram(self):
        assert small_netlist().degree_histogram() == {2: 1, 3: 1}

    def test_with_nets_replaces(self):
        nl = small_netlist()
        replaced = nl.with_nets([Net("only", ("a", "c"))])
        assert replaced.n_nets == 1
        assert replaced.n_modules == 3
        assert nl.n_nets == 2  # original untouched
