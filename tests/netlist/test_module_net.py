"""Tests for Module, Net, TwoPinNet."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point
from repro.netlist import Module, Net, NetType, TwoPinNet


class TestModule:
    def test_basic(self):
        m = Module("cpu", 30.0, 20.0)
        assert m.area == 600.0
        assert m.aspect_ratio == pytest.approx(2 / 3)

    def test_rotation(self):
        m = Module("cpu", 30.0, 20.0).rotated()
        assert (m.width, m.height) == (20.0, 30.0)
        assert m.name == "cpu"

    def test_validation(self):
        with pytest.raises(ValueError):
            Module("", 1, 1)
        with pytest.raises(ValueError):
            Module("m", 0, 1)
        with pytest.raises(ValueError):
            Module("m", 1, -2)

    def test_shapes_rotatable(self):
        shapes = Module("m", 30, 20).shapes()
        assert shapes == [(30, 20), (20, 30)]

    def test_shapes_square_single(self):
        assert Module("m", 10, 10).shapes() == [(10, 10)]

    def test_shapes_rotation_disabled(self):
        assert Module("m", 30, 20).shapes(allow_rotation=False) == [(30, 20)]


class TestNet:
    def test_basic(self):
        n = Net("n1", ("a", "b", "c"), weight=2.0)
        assert n.degree == 3
        assert not n.is_two_pin

    def test_validation(self):
        with pytest.raises(ValueError):
            Net("n", ("a",))  # too few terminals
        with pytest.raises(ValueError):
            Net("n", ("a", "a"))  # duplicate terminal
        with pytest.raises(ValueError):
            Net("", ("a", "b"))
        with pytest.raises(ValueError):
            Net("n", ("a", "b"), weight=0.0)

    def test_terminals_tuple(self):
        n = Net("n", ["a", "b"])
        assert isinstance(n.terminals, tuple)


class TestTwoPinNet:
    def test_pin_ordering_canonical(self):
        # p1 must come out as the left pin regardless of input order.
        n = TwoPinNet("n", Point(5, 0), Point(1, 3))
        assert n.p1 == Point(1, 3)
        assert n.p2 == Point(5, 0)

    def test_type_i(self):
        n = TwoPinNet("n", Point(0, 0), Point(4, 5))
        assert n.net_type is NetType.TYPE_I

    def test_type_ii(self):
        n = TwoPinNet("n", Point(0, 5), Point(4, 0))
        assert n.net_type is NetType.TYPE_II

    def test_degenerate_horizontal(self):
        assert TwoPinNet("n", Point(0, 2), Point(4, 2)).net_type is (
            NetType.DEGENERATE
        )

    def test_degenerate_vertical(self):
        assert TwoPinNet("n", Point(3, 0), Point(3, 9)).net_type is (
            NetType.DEGENERATE
        )

    def test_degenerate_point(self):
        assert TwoPinNet("n", Point(1, 1), Point(1, 1)).net_type is (
            NetType.DEGENERATE
        )

    def test_routing_range(self):
        n = TwoPinNet("n", Point(4, 1), Point(1, 5))
        rr = n.routing_range
        assert (rr.x_lo, rr.y_lo, rr.x_hi, rr.y_hi) == (1, 1, 4, 5)

    def test_manhattan_length(self):
        assert TwoPinNet("n", Point(0, 0), Point(3, 4)).manhattan_length == 7

    def test_translated_preserves_type(self):
        n = TwoPinNet("n", Point(0, 5), Point(4, 0), weight=2.0)
        t = n.translated(10, 20)
        assert t.net_type is n.net_type
        assert t.weight == 2.0
        assert t.p1 == Point(10, 25)

    @given(
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(-100, 100),
    )
    def test_p1_always_left(self, x1, y1, x2, y2):
        n = TwoPinNet("n", Point(x1, y1), Point(x2, y2))
        assert (n.p1.x, n.p1.y) <= (n.p2.x, n.p2.y)
