"""Tests for soft modules."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import evaluate_polish, initial_expression
from repro.netlist import Netlist, SoftModule, soften
from repro.netlist.generators import random_circuit


class TestSoftModule:
    def test_all_shapes_preserve_area(self):
        m = SoftModule("s", area=1000.0, min_aspect=0.25, max_aspect=4.0)
        for w, h in m.shapes():
            assert w * h == pytest.approx(1000.0)

    def test_aspect_bounds_respected(self):
        m = SoftModule("s", area=900.0, min_aspect=0.5, max_aspect=2.0)
        for w, h in m.shapes(allow_rotation=False):
            assert 0.5 - 1e-9 <= h / w <= 2.0 + 1e-9

    def test_rotation_extends_interval(self):
        m = SoftModule("s", area=900.0, min_aspect=1.5, max_aspect=2.0)
        aspects = sorted(h / w for w, h in m.shapes(allow_rotation=True))
        assert aspects[0] < 1.0  # the reciprocal range is reachable
        assert aspects[-1] >= 2.0 - 1e-9

    def test_default_outline_squarest(self):
        m = SoftModule("s", area=400.0, min_aspect=0.5, max_aspect=2.0)
        assert m.width == pytest.approx(20.0)
        assert m.height == pytest.approx(20.0)
        skewed = SoftModule("s", area=400.0, min_aspect=2.0, max_aspect=4.0)
        assert skewed.aspect_ratio == 2.0

    def test_single_shape(self):
        m = SoftModule("s", area=100.0, min_aspect=1.0, max_aspect=1.0, n_shapes=5)
        assert m.shapes(allow_rotation=False) == [(10.0, 10.0)]

    def test_rotated_swaps_bounds(self):
        m = SoftModule("s", area=100.0, min_aspect=0.25, max_aspect=0.5)
        r = m.rotated()
        assert r.min_aspect == pytest.approx(2.0)
        assert r.max_aspect == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftModule("", 100.0)
        with pytest.raises(ValueError):
            SoftModule("s", 0.0)
        with pytest.raises(ValueError):
            SoftModule("s", 100.0, min_aspect=2.0, max_aspect=1.0)
        with pytest.raises(ValueError):
            SoftModule("s", 100.0, min_aspect=0.0)
        with pytest.raises(ValueError):
            SoftModule("s", 100.0, n_shapes=0)

    @given(
        st.floats(10.0, 1e6),
        st.floats(0.1, 1.0),
        st.floats(1.0, 10.0),
        st.integers(1, 12),
    )
    def test_shape_count_and_area_property(self, area, lo, hi, n):
        m = SoftModule("s", area, lo, hi, n)
        shapes = m.shapes(allow_rotation=False)
        assert len(shapes) <= n
        for w, h in shapes:
            assert w * h == pytest.approx(area, rel=1e-9)


class TestSoften:
    def test_preserves_structure(self):
        hard = random_circuit(6, 10, seed=0)
        soft = soften(hard)
        assert soft.n_modules == hard.n_modules
        assert soft.n_nets == hard.n_nets
        assert soft.total_module_area == pytest.approx(hard.total_module_area)
        assert soft.name.endswith("_soft")

    def test_netlist_accepts_soft_modules(self):
        nl = Netlist("s", [SoftModule("a", 100.0), SoftModule("b", 200.0)])
        assert nl.total_module_area == 300.0


class TestSoftPacking:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 500))
    def test_soft_packings_valid_and_tighter(self, n, seed):
        hard = random_circuit(n, 0, seed=seed)
        soft = soften(hard, 0.4, 2.5, n_shapes=6)
        rng = random.Random(seed)
        names = [m.name for m in hard.modules]
        expr = initial_expression(names, rng)
        hard_fp = evaluate_polish(expr, {m.name: m for m in hard.modules})
        soft_fp = evaluate_polish(expr, {m.name: m for m in soft.modules})
        soft_fp.validate()
        # More leaf shapes can only help the min-area packing of the
        # same tree -- when the soft aspect interval covers the hard
        # outline's aspect.  With generous bounds it usually does; we
        # assert the packer is at least not catastrophically worse.
        assert soft_fp.chip.area <= hard_fp.chip.area * 1.3
        assert soft_fp.module_area == pytest.approx(
            hard_fp.module_area, rel=1e-6
        )
