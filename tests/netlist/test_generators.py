"""Tests for synthetic circuit generators."""

import pytest

from repro.netlist import clustered_circuit, grid_circuit, random_circuit


class TestRandomCircuit:
    def test_counts(self):
        nl = random_circuit(12, 30, seed=1)
        assert nl.n_modules == 12
        assert nl.n_nets == 30

    def test_deterministic_by_seed(self):
        a = random_circuit(10, 20, seed=7)
        b = random_circuit(10, 20, seed=7)
        assert [(m.name, m.width, m.height) for m in a.modules] == [
            (m.name, m.width, m.height) for m in b.modules
        ]
        assert [n.terminals for n in a.nets] == [n.terminals for n in b.nets]

    def test_different_seeds_differ(self):
        a = random_circuit(10, 20, seed=1)
        b = random_circuit(10, 20, seed=2)
        assert [n.terminals for n in a.nets] != [n.terminals for n in b.nets]

    def test_mean_area_respected(self):
        nl = random_circuit(40, 10, seed=3, mean_area=10_000.0, area_spread=2.0)
        mean = nl.total_module_area / nl.n_modules
        assert 4_000 < mean < 25_000

    def test_degree_bounds(self):
        nl = random_circuit(10, 200, seed=5, max_degree=4)
        assert all(2 <= n.degree <= 4 for n in nl.nets)

    def test_too_few_modules_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)


class TestClusteredCircuit:
    def test_counts_and_determinism(self):
        a = clustered_circuit(20, 50, n_clusters=4, seed=9)
        b = clustered_circuit(20, 50, n_clusters=4, seed=9)
        assert a.n_nets == 50
        assert [n.terminals for n in a.nets] == [n.terminals for n in b.nets]

    def test_locality_bias(self):
        # With prob 1.0 every 2-pin net stays inside one cluster.
        nl = clustered_circuit(
            20, 200, n_clusters=4, intra_cluster_prob=1.0, seed=2, max_degree=2
        )
        cluster_of = {}
        for i, name in enumerate(m.name for m in nl.modules):
            cluster_of[name] = i % 4
        intra = sum(
            1
            for n in nl.nets
            if len({cluster_of[t] for t in n.terminals}) == 1
        )
        assert intra / nl.n_nets > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            clustered_circuit(10, 5, n_clusters=0)
        with pytest.raises(ValueError):
            clustered_circuit(10, 5, n_clusters=20)
        with pytest.raises(ValueError):
            clustered_circuit(10, 5, intra_cluster_prob=1.5)


class TestGridCircuit:
    def test_mesh_edges(self):
        nl = grid_circuit(3, 4)
        assert nl.n_modules == 12
        # Mesh: rows*(cols-1) + (rows-1)*cols edges.
        assert nl.n_nets == 3 * 3 + 2 * 4

    def test_all_two_pin(self):
        nl = grid_circuit(2, 5)
        assert all(n.is_two_pin for n in nl.nets)

    def test_size_jitter_bounded(self):
        nl = grid_circuit(3, 3, module_size=100.0, size_jitter=0.1, seed=0)
        for m in nl.modules:
            assert 89.9 < m.width < 110.1
            assert 89.9 < m.height < 110.1

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_circuit(0, 3)
        with pytest.raises(ValueError):
            grid_circuit(1, 1)
