"""Worker supervision: injected crashes, hangs, and exceptions must be
retried, recorded, and never change the numbers.

Every fault here comes from the deterministic harness in
:mod:`repro.testing.faults` -- targeted at an exact (seed, attempt,
mode) -- so the supervised retry always succeeds and the tests assert
the recovered run is *bit-identical* to an unfaulted sequential run.
"""

import pytest

import repro.engine.multistart as multistart_mod
from repro.anneal.schedule import GeometricSchedule
from repro.engine import (
    MultiStartEngine,
    ObjectiveSpec,
    RunControl,
)
from repro.errors import WorkerFailure
from repro.netlist import random_circuit
from repro.testing import FaultSpec

SHORT = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1)
SPEC = ObjectiveSpec(alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=30.0)
SEED = 20


def _multi(netlist, **kwargs):
    kwargs.setdefault("restarts", 2)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("objective_spec", SPEC)
    kwargs.setdefault("moves_per_temperature", 3 * netlist.n_modules)
    kwargs.setdefault("schedule", SHORT)
    kwargs.setdefault("retry_backoff", 0.0)
    return MultiStartEngine(netlist, **kwargs)


@pytest.fixture(scope="module")
def netlist():
    return random_circuit(8, 20, seed=12)


@pytest.fixture(scope="module")
def baseline(netlist):
    """The unfaulted sequential truth every recovery must reproduce."""
    return _multi(netlist).run()


class TestPoolSupervision:
    def test_injected_crash_is_retried_and_recovers(self, netlist, baseline):
        fault = FaultSpec(kind="crash", seed=SEED, attempt=0, mode="pool")
        outcome = _multi(netlist, workers=2, inject_fault=fault).run()

        assert outcome.costs == baseline.costs
        assert outcome.best.seed == baseline.best.seed
        assert outcome.best.cost == baseline.best.cost
        assert not outcome.degraded
        assert outcome.pool_rebuilds >= 1
        assert outcome.n_failed == 0
        crashed = [
            r
            for r in outcome.reports
            if any(f.kind == "crash" for f in r.failures)
        ]
        assert crashed, "the injected crash left no RunReport trace"
        for report in outcome.reports:
            assert report.status == "ok"
            assert report.mode == "pool"
        assert any(r.retried for r in outcome.reports)

    def test_hang_trips_watchdog_and_is_retried(self, netlist, baseline):
        fault = FaultSpec(
            kind="hang", seed=SEED, attempt=0, mode="pool", hang_seconds=120.0
        )
        outcome = _multi(
            netlist, workers=2, inject_fault=fault, restart_timeout=10.0
        ).run()

        assert outcome.costs == baseline.costs
        assert outcome.pool_rebuilds >= 1
        hung = next(r for r in outcome.reports if r.seed == SEED)
        assert hung.status == "ok"
        assert hung.retried
        assert any(f.kind == "timeout" for f in hung.failures)

    def test_rebuild_budget_exhausted_degrades_to_sequential(
        self, netlist, baseline
    ):
        # mode="pool" faults are inert once execution degrades, so the
        # sequential fallback deterministically completes.
        fault = FaultSpec(kind="crash", seed=SEED, attempt=0, mode="pool")
        outcome = _multi(
            netlist, workers=2, inject_fault=fault, max_pool_rebuilds=0
        ).run()

        assert outcome.degraded
        assert outcome.costs == baseline.costs
        assert outcome.best.cost == baseline.best.cost
        for report in outcome.reports:
            assert report.status == "ok"
            assert report.mode == "sequential"


class TestSequentialSupervision:
    def test_injected_exception_is_retried(self, netlist, baseline):
        fault = FaultSpec(kind="raise", seed=SEED, attempt=0, mode="sequential")
        outcome = _multi(netlist, inject_fault=fault).run()

        assert outcome.costs == baseline.costs
        faulted = next(r for r in outcome.reports if r.seed == SEED)
        assert faulted.status == "ok"
        assert faulted.attempts == 2
        assert [f.kind for f in faulted.failures] == ["error"]
        assert "InjectedFault" in faulted.failures[0].message
        other = next(r for r in outcome.reports if r.seed == SEED + 1)
        assert other.attempts == 1 and not other.failures

    def test_all_attempts_failing_raises_workerfailure(self, netlist):
        fault = FaultSpec(kind="raise", seed=SEED, attempt=0, mode="sequential")
        engine = _multi(
            netlist, restarts=1, max_retries=0, inject_fault=fault
        )
        with pytest.raises(WorkerFailure, match="every restart failed"):
            engine.run()

    def test_stop_between_restarts_skips_the_rest(
        self, netlist, baseline, monkeypatch
    ):
        control = RunControl()
        real = multistart_mod._run_restart

        def stop_after_first(*args, **kwargs):
            result = real(*args, **kwargs)
            control.request_stop("supervisor")
            return result

        monkeypatch.setattr(multistart_mod, "_run_restart", stop_after_first)
        outcome = _multi(netlist, restarts=3).run(control=control)

        assert len(outcome.results) == 1
        assert outcome.best.seed == SEED
        assert outcome.best.cost == baseline.costs[0]
        statuses = {r.seed: r.status for r in outcome.reports}
        assert statuses == {
            SEED: "ok",
            SEED + 1: "skipped",
            SEED + 2: "skipped",
        }
