"""Checkpoint/resume robustness: atomic files, validation, and the
bit-identical continuation guarantee.

The load-bearing property: a run that crashes mid-anneal and resumes
from its last checkpoint must finish *bit-identical* to the run that
never crashed -- same best cost, same move/acceptance counters, same
snapshot trace, same final RNG state.  The tests simulate the crash
with the deterministic :class:`~repro.testing.faults.FaultyObjective`
(raises at an exact evaluation ordinal) rather than timing games.
"""

import os
import pickle
import signal

import pytest

from repro.anneal.schedule import GeometricSchedule
from repro.engine import (
    AnnealEngine,
    Checkpoint,
    ObjectiveSpec,
    RunControl,
    install_signal_handlers,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.checkpoint import CHECKPOINT_VERSION, _MAGIC, LoopState
from repro.errors import CheckpointError
from repro.netlist import random_circuit
from repro.testing import FaultyObjective, InjectedFault

SHORT = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1)
SPEC = ObjectiveSpec(alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=30.0)


def _netlist():
    return random_circuit(8, 20, seed=7)


def _engine(netlist, moves=125, **kwargs):
    kwargs.setdefault("representation", "polish")
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("objective_spec", SPEC)
    kwargs.setdefault("moves_per_temperature", moves)
    kwargs.setdefault("schedule", SHORT)
    return AnnealEngine(netlist, **kwargs)


def _assert_bit_identical(resumed, straight):
    assert resumed.completed and straight.completed
    assert resumed.cost == straight.cost
    assert abs(resumed.cost - straight.cost) <= 1e-12
    assert resumed.n_moves == straight.n_moves
    assert resumed.n_accepted == straight.n_accepted
    assert resumed.rng_state == straight.rng_state
    assert [s.best_cost for s in resumed.snapshots] == [
        s.best_cost for s in straight.snapshots
    ]
    assert [s.current_cost for s in resumed.snapshots] == [
        s.current_cost for s in straight.snapshots
    ]


class TestCheckpointFile:
    def _checkpoint(self, netlist):
        return Checkpoint(
            representation="polish",
            seed=3,
            netlist=netlist,
            moves_per_temperature=10,
            schedule=SHORT,
            loop=LoopState(
                step=2,
                move=5,
                t0=1.5,
                rng_state=("x",),
                current="cur",
                current_eval=None,
                best="best",
                best_eval=None,
                n_moves=25,
                n_accepted=11,
            ),
            objective_spec=SPEC,
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        original = self._checkpoint(_netlist())
        save_checkpoint(path, original)
        loaded = load_checkpoint(path)
        assert loaded.representation == original.representation
        assert loaded.seed == original.seed
        assert loaded.moves_per_temperature == 10
        assert loaded.loop.step == 2 and loaded.loop.move == 5
        assert loaded.loop.n_moves == 25
        assert loaded.objective_spec == SPEC
        assert loaded.version == CHECKPOINT_VERSION

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, self._checkpoint(_netlist()))
        save_checkpoint(path, self._checkpoint(_netlist()))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.ckpt"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        path.write_bytes(b"{\"not\": \"a checkpoint\"}")
        with pytest.raises(CheckpointError, match="not a repro"):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, self._checkpoint(_netlist()))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = pickle.dumps(self._checkpoint(_netlist()))
        path.write_bytes(_MAGIC + (99).to_bytes(4, "big") + payload)
        with pytest.raises(CheckpointError, match="version 99"):
            load_checkpoint(path)

    def test_wrong_object_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = pickle.dumps({"not": "a Checkpoint"})
        path.write_bytes(
            _MAGIC + CHECKPOINT_VERSION.to_bytes(4, "big") + payload
        )
        with pytest.raises(CheckpointError, match="does not contain"):
            load_checkpoint(path)


class TestResumeDeterminism:
    def test_crash_and_resume_is_bit_identical(self, tmp_path):
        """~500 moves straight vs. crash at evaluation 331 + resume."""
        netlist = _netlist()
        straight = _engine(netlist).run()

        ck = tmp_path / "run.ckpt"
        crashing = _engine(
            netlist,
            objective_factory=lambda nl, ctx: FaultyObjective(
                SPEC.build(nl, ctx), fail_at_evaluation=331
            ),
        )
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        with pytest.raises(InjectedFault):
            crashing.run(control=control)

        # The crash hit mid-run: the last checkpoint is a step boundary
        # strictly inside the schedule, so resume has real work left.
        loaded = load_checkpoint(ck)
        assert 0 < loaded.loop.step <= 3
        assert loaded.loop.move == 0

        resumed_engine = AnnealEngine.resume(ck)
        assert resumed_engine.resuming
        resumed = resumed_engine.run()
        _assert_bit_identical(resumed, straight)

    def test_crash_and_resume_with_congestion_pipeline(self, tmp_path):
        """Same guarantee with gamma > 0 (congestion model + caches)."""
        spec = ObjectiveSpec(
            alpha=1.0, beta=1.0, gamma=1.0, congestion_grid_size=30.0
        )
        netlist = _netlist()
        straight = _engine(netlist, moves=30, objective_spec=spec).run()

        ck = tmp_path / "run.ckpt"
        crashing = _engine(
            netlist,
            moves=30,
            objective_spec=spec,
            objective_factory=lambda nl, ctx: FaultyObjective(
                spec.build(nl, ctx), fail_at_evaluation=80
            ),
        )
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        with pytest.raises(InjectedFault):
            crashing.run(control=control)

        resumed = AnnealEngine.resume(ck).run()
        _assert_bit_identical(resumed, straight)

    def test_resume_of_finished_run_returns_result(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        netlist = _netlist()
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        finished = _engine(netlist, moves=20).run(control=control)
        assert finished.completed
        assert control.checkpoints_written > 0

        again = AnnealEngine.resume(ck).run()
        assert again.completed
        assert again.cost == finished.cost
        assert again.n_moves == finished.n_moves
        # No moves left: the loop body never runs again.
        assert again.rng_state == finished.rng_state

    def test_resume_with_wrong_objective_raises(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        netlist = _netlist()
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        crashing = _engine(
            netlist,
            moves=40,
            objective_factory=lambda nl, ctx: FaultyObjective(
                SPEC.build(nl, ctx), fail_at_evaluation=90
            ),
        )
        with pytest.raises(InjectedFault):
            crashing.run(control=control)
        assert ck.exists()

        different_physics = ObjectiveSpec(
            alpha=3.0, beta=1.0, gamma=0.0, pin_grid_size=30.0
        )
        with pytest.raises(CheckpointError, match="does not match"):
            AnnealEngine.resume(
                ck,
                objective_factory=lambda nl, ctx: different_physics.build(
                    nl, ctx
                ),
            ).run()


class TestGracefulStop:
    def test_deadline_stops_with_best_so_far(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        netlist = _netlist()
        control = RunControl(
            deadline_seconds=0.15, checkpoint_path=ck, checkpoint_every=1
        )
        result = _engine(netlist, moves=4000).run(control=control)
        assert not result.completed
        assert result.stop_reason == "deadline"
        assert result.floorplan is not None
        assert result.cost > 0
        assert ck.exists()  # final checkpoint written on stop

    def test_sigint_checkpoints_and_resume_is_bit_identical(self, tmp_path):
        """First SIGINT -> cooperative stop with a checkpoint; resuming
        finishes bit-identical to the uninterrupted run."""
        netlist = _netlist()
        straight = _engine(netlist, moves=40).run()

        ck = tmp_path / "run.ckpt"
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        fired = []

        def send_sigint(snapshot):
            if not fired:
                fired.append(snapshot.step)
                os.kill(os.getpid(), signal.SIGINT)

        with install_signal_handlers(control):
            stopped = _engine(netlist, moves=40).run(
                on_snapshot=send_sigint, control=control
            )
        assert fired == [0]
        assert not stopped.completed
        assert stopped.stop_reason == "signal"
        assert stopped.checkpoints_written >= 1

        resumed = AnnealEngine.resume(ck).run()
        _assert_bit_identical(resumed, straight)

    def test_stop_mid_step_checkpoint_resumes_bit_identical(self, tmp_path):
        """A stop landing mid-temperature-step records the exact unrun
        move; the resumed run still matches the straight run."""
        netlist = _netlist()
        straight = _engine(netlist, moves=40).run()

        ck = tmp_path / "run.ckpt"
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)

        class MidStepStop(FaultyObjective):
            def evaluate_floorplan(self, floorplan):
                self.evaluations += 1
                # 31 calibration/t0 evaluations + 50 move evaluations:
                # stop lands inside step 1 (moves_per_temperature=40).
                if self.evaluations == 81:
                    control.request_stop("supervisor")
                return self.inner.evaluate_floorplan(floorplan)

        stopped = _engine(
            netlist,
            moves=40,
            objective_factory=lambda nl, ctx: MidStepStop(
                SPEC.build(nl, ctx), fail_at_evaluation=10**9
            ),
        ).run(control=control)
        assert not stopped.completed
        assert stopped.stop_reason == "supervisor"

        loaded = load_checkpoint(ck)
        assert loaded.loop.move > 0, "expected a mid-step checkpoint"

        resumed = AnnealEngine.resume(ck).run()
        _assert_bit_identical(resumed, straight)


class TestPeekCheckpoint:
    """`peek_checkpoint`: identify a file without rebuilding anything."""

    def _write_engine_checkpoint(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        control = RunControl(checkpoint_path=ck, checkpoint_every=1)
        _engine(_netlist(), moves=25).run(control=control)
        return ck

    def test_peek_engine_checkpoint(self, tmp_path):
        from repro.engine import peek_checkpoint

        ck = self._write_engine_checkpoint(tmp_path)
        info = peek_checkpoint(ck)
        assert info.kind == "engine"
        assert info.version == CHECKPOINT_VERSION
        assert info.representation == "polish"
        assert info.seed == 9
        assert info.n_modules == 8
        assert info.completed_steps >= 1
        assert info.best_cost is not None
        line = info.summary()
        assert "engine checkpoint v1" in line
        assert "polish" in line and "8 modules" in line

    def test_peek_driver_checkpoint(self, tmp_path):
        from repro.engine import peek_checkpoint
        from repro.engine.checkpoint import (
            DriverCheckpoint,
            save_driver_checkpoint,
        )

        path = tmp_path / "driver.ckpt"
        save_driver_checkpoint(
            path,
            DriverCheckpoint(
                driver="tempering", config={"rounds": 4}, state={"round": 2}
            ),
        )
        info = peek_checkpoint(path)
        assert info.kind == "driver"
        assert info.driver == "tempering"
        assert "driver checkpoint v1 (tempering)" in info.summary()

    def test_peek_rejects_non_checkpoints(self, tmp_path):
        from repro.engine import peek_checkpoint

        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError):
            peek_checkpoint(garbage)
        with pytest.raises(CheckpointError, match="cannot read"):
            peek_checkpoint(tmp_path / "absent.ckpt")

    def test_resume_mismatch_error_names_format_and_engine(self, tmp_path):
        """The resume sanity check's error carries the checkpoint
        format version and the engine class, so a mismatch report is
        actionable without opening the file."""
        ck = self._write_engine_checkpoint(tmp_path)
        different_physics = ObjectiveSpec(
            alpha=3.0, beta=1.0, gamma=0.0, pin_grid_size=30.0
        )
        with pytest.raises(CheckpointError) as excinfo:
            AnnealEngine.resume(
                ck,
                objective_factory=lambda nl, ctx: different_physics.build(
                    nl, ctx
                ),
            ).run()
        message = str(excinfo.value)
        assert "does not match" in message
        assert "checkpoint format v1" in message
        assert "engine AnnealEngine" in message
        assert "representation polish" in message
