"""Heartbeat hang detection must judge the *current* attempt.

A heartbeat file left behind by a previous killed/drained attempt has
a stale mtime; the supervisor must not read that as "this worker is
hung" the instant a fresh attempt starts running (before it writes its
first beat).
"""

import os
import time

from repro.engine.multistart import RunReport
from repro.engine.supervise import SupervisedRunner


def _finishes_quickly(key, attempt, mode):
    time.sleep(0.3)
    return key * 10


def test_stale_preexisting_heartbeat_cannot_condemn_fresh_attempt(tmp_path):
    heartbeat = tmp_path / "heartbeat"
    heartbeat.write_text("old attempt's last beat\n")
    long_ago = time.time() - 300.0
    os.utime(heartbeat, (long_ago, long_ago))

    runner = SupervisedRunner(
        fn=_finishes_quickly,
        make_args=lambda k, attempt, mode: (k, attempt, mode),
        timeout=60.0,
        max_retries=0,
        retry_backoff=0.0,
        heartbeat_path=lambda k: heartbeat,
        heartbeat_timeout=5.0,
        heartbeat_poll=0.02,
    )
    reports = {1: RunReport(seed=1)}
    results = {}
    rebuilds, degraded = runner.run_pool(
        [1], workers=1, reports=reports, results=results
    )
    # The worker never beat (it is not wired to the file), but it ran
    # for far less than heartbeat_timeout -- the 300s-old file alone
    # must not get the pool killed.
    assert results == {1: 10}
    assert rebuilds == 0 and not degraded
    assert reports[1].failures == []
