"""Input validation and atomic output: malformed circuits fail loudly
at construction with the offending entity named, and JSON/checkpoint
writers never leave a truncated file behind.
"""

import json

import pytest

from repro.errors import NetlistValidationError, ReproError
from repro.ioutil import atomic_write_bytes, atomic_write_json
from repro.netlist import Module, Net, Netlist


def _modules():
    return [Module("a", 10, 10), Module("b", 20, 10)]


class TestNetlistValidation:
    def test_duplicate_module_named(self):
        with pytest.raises(NetlistValidationError, match="'a'"):
            Netlist("c", [Module("a", 10, 10), Module("a", 5, 5)])

    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistValidationError, match="no modules"):
            Netlist("empty", [])

    def test_non_positive_module_dimensions_named(self):
        with pytest.raises(NetlistValidationError, match="'bad'"):
            Module("bad", 0, 10)
        with pytest.raises(NetlistValidationError, match="'bad'"):
            Module("bad", 10, -1)

    def test_net_with_unknown_terminal_named(self):
        with pytest.raises(NetlistValidationError, match="'n1'.*'ghost'"):
            Netlist("c", _modules(), [Net("n1", ("a", "ghost"))])

    def test_net_with_one_pin_rejected(self):
        with pytest.raises(NetlistValidationError, match="at least 2"):
            Net("n1", ("a",))

    def test_duplicate_net_name_named(self):
        with pytest.raises(NetlistValidationError, match="'n1'"):
            Netlist(
                "c",
                _modules(),
                [Net("n1", ("a", "b")), Net("n1", ("b", "a"))],
            )

    def test_duplicate_terminal_rejected(self):
        with pytest.raises(NetlistValidationError, match="twice"):
            Net("n1", ("a", "a"))

    def test_non_positive_weight_rejected(self):
        with pytest.raises(NetlistValidationError, match="weight"):
            Net("n1", ("a", "b"), weight=0.0)

    def test_taxonomy_is_catchable_both_ways(self):
        """Double inheritance keeps pre-taxonomy except clauses working."""
        with pytest.raises(ValueError):
            Netlist("empty", [])
        with pytest.raises(ReproError):
            Netlist("empty", [])


class TestAtomicWrites:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        payload = {"costs": [1.5, 2.0], "ok": True}
        returned = atomic_write_json(path, payload)
        assert returned == path
        assert json.loads(path.read_text()) == payload
        assert path.read_text().endswith("\n")

    def test_no_temp_residue_on_success(self, tmp_path):
        path = tmp_path / "report.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["report.json"]
        assert json.loads(path.read_text()) == {"v": 2}

    def test_unserializable_payload_leaves_destination_untouched(
        self, tmp_path
    ):
        path = tmp_path / "report.json"
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert sorted(p.name for p in tmp_path.iterdir()) == ["report.json"]

    def test_failed_write_cleans_temp_and_keeps_old(self, tmp_path, monkeypatch):
        import repro.ioutil as ioutil

        path = tmp_path / "data.bin"
        atomic_write_bytes(path, b"old")

        def explode(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(ioutil.os, "replace", explode)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_bytes(path, b"new")
        monkeypatch.undo()
        assert path.read_bytes() == b"old"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["data.bin"]

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "report.json"
        atomic_write_json(path, {"v": 1})
        assert json.loads(path.read_text()) == {"v": 1}
