"""Numeric fault injection: the congestion pipeline must detect NaN/inf
escaping the Theorem-1 normal approximation and fall back to the exact
Formula 3 evaluation, never returning a non-finite score.

:func:`~repro.testing.faults.poison_approx_mass` patches the batched
kernel to corrupt exactly one cell of one call, so each test proves a
specific guard fired -- and that the rescued score *equals* the exact
model's answer, not merely "something finite".
"""

import math
import random

import numpy as np
import pytest

import repro.congestion.model as model_mod
from repro.congestion.model import IrregularGridModel
from repro.congestion.irgrid import build_irgrid
from repro.engine.representation import make_representation
from repro.netlist import random_circuit, nets_to_arrays
from repro.perf import PerfRecorder
from repro.pins import assign_pins
from repro.testing import poison_approx_mass


@pytest.fixture(scope="module")
def placed():
    """A realized floorplan's chip + placed 2-pin nets."""
    netlist = random_circuit(8, 20, seed=7)
    representation = make_representation("polish", netlist)
    state = representation.initial(random.Random(0))
    floorplan = representation.realize(state)
    assignment = assign_pins(floorplan, netlist, 30.0)
    return assignment.chip, assignment.two_pin_nets


def _models():
    approx = IrregularGridModel(30.0, method="approx", use_cache=False)
    exact = IrregularGridModel(30.0, method="exact", use_cache=False)
    return approx, exact


@pytest.mark.parametrize("poison", [float("nan"), float("inf")])
def test_poisoned_mass_rescued_by_exact_model(placed, poison):
    chip, nets = placed
    approx, exact = _models()
    perf = PerfRecorder()
    approx.perf = perf

    with poison_approx_mass(at_call=1, value=poison) as state:
        score = approx.estimate(chip, nets)
    assert state["poisoned"]
    assert math.isfinite(score)
    assert score == exact.estimate(chip, nets)
    assert perf.counters.get("congestion_exact_rescue") == 1


def test_poisoned_arrays_path_rescued(placed):
    chip, nets = placed
    approx, exact = _models()
    arrays = nets_to_arrays(nets)

    with poison_approx_mass(at_call=1) as state:
        score = approx.estimate_arrays(chip, arrays)
    assert state["poisoned"]
    assert math.isfinite(score)
    assert score == exact.estimate(chip, nets)


def test_unpoisoned_calls_untouched(placed):
    chip, nets = placed
    approx, _ = _models()
    clean = approx.estimate(chip, nets)

    # Poison armed for a call that never happens: identical result,
    # and the patch is unwound on exit.
    with poison_approx_mass(at_call=99) as state:
        score = approx.estimate(chip, nets)
    assert not state["poisoned"]
    assert score == clean
    assert model_mod.batched_approx_mass.__module__ == "repro.congestion.batched"


def test_add_net_matrix_guard_reroutes_non_finite_cells(placed):
    """The per-cell guard: a non-finite probability the domain guards
    missed is recomputed with exact Formula 3, cell by cell."""
    chip, nets = placed
    model = IrregularGridModel(30.0, method="approx", use_cache=False)
    irgrid = build_irgrid(chip, nets, 30.0, 2.0)
    wide = [
        n
        for n in nets
        if round(n.routing_range.width / 30.0) >= 3
        and round(n.routing_range.height / 30.0) >= 3
    ]
    assert wide, "fixture needs at least one net wide enough for Theorem 1"

    real = model_mod.approx_ir_matrix

    def corrupted(*args, **kwargs):
        probs, invalid = real(*args, **kwargs)
        probs = probs.copy()
        probs[probs.shape[0] // 2, probs.shape[1] // 2] = float("inf")
        return probs, invalid

    model_mod.approx_ir_matrix = corrupted
    try:
        mass = np.zeros((irgrid.n_columns, irgrid.n_rows))
        for net in wide:
            model._add_net(irgrid, net, mass)
    finally:
        model_mod.approx_ir_matrix = real
    assert np.isfinite(mass).all()


@pytest.mark.parametrize("circuit_seed", [3, 4, 5])
def test_batched_kernel_always_finite_on_messy_geometry(circuit_seed):
    """The kernel-level guard end to end: real placements mix thin,
    degenerate, and pin-flush routing ranges -- the exact inputs the
    Theorem-1 approximation mistrusts -- and the approx score must stay
    finite and agree with the exact model wherever the guards reroute."""
    netlist = random_circuit(12, 30, seed=circuit_seed)
    representation = make_representation("polish", netlist)
    state = representation.initial(random.Random(1))
    floorplan = representation.realize(state)
    assignment = assign_pins(floorplan, netlist, 30.0)
    approx, exact = _models()
    score = approx.estimate(assignment.chip, assignment.two_pin_nets)
    assert math.isfinite(score)
    exact_score = exact.estimate(assignment.chip, assignment.two_pin_nets)
    assert math.isfinite(exact_score)
    # The approximation tracks the exact model closely on small cases;
    # a guard failure shows up as a wild divergence, not a few percent.
    assert score == pytest.approx(exact_score, rel=0.25, abs=0.05)
