"""Tests for cut-line merging and lookup."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import CutLines, merge_close_lines


class TestMergeCloseLines:
    def test_no_merge_when_far_apart(self):
        assert merge_close_lines([0, 10, 20], 5) == [0, 10, 20]

    def test_pair_merges_to_midpoint(self):
        assert merge_close_lines([0, 10, 11, 30], 5) == [0, 10.5, 30]

    def test_kept_line_pins_merge(self):
        # The chip boundary at 0 absorbs the nearby line at 1.
        assert merge_close_lines([0, 1, 30], 5, keep=[0]) == [0, 30]

    def test_duplicates_collapse(self):
        assert merge_close_lines([5, 5, 5, 9], 2) == [5, 9]

    def test_unsorted_input(self):
        assert merge_close_lines([30, 0, 11, 10], 5) == [0, 10.5, 30]

    def test_single_pass_keeps_near_threshold_midpoints(self):
        # 0 and 4 merge to 2; next line 7 is 5 >= min_gap away from 2,
        # so a single pass keeps it even though raw 4 and 7 were close.
        assert merge_close_lines([0, 4, 7], 5) == [2, 7]

    def test_chain_comparison_uses_representative(self):
        # 0,4 -> rep 2; 6 is within 5 of 2 -> joins; rep becomes 10/3.
        result = merge_close_lines([0, 4, 6], 5)
        assert result == [pytest.approx(10 / 3)]

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            merge_close_lines([0, 1], -1)

    def test_empty(self):
        assert merge_close_lines([], 5) == []

    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=40),
        st.floats(0.1, 100),
    )
    def test_gap_invariant(self, lines, min_gap):
        # The single representative-comparison pass already guarantees
        # all pairwise gaps >= min_gap (see the function docstring).
        merged = merge_close_lines(lines, min_gap)
        assert merged == sorted(merged)
        for a, b in zip(merged, merged[1:]):
            assert b - a >= min_gap - 1e-9

    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=40),
        st.floats(0.1, 100),
    )
    def test_merged_lines_stay_in_hull(self, lines, min_gap):
        merged = merge_close_lines(lines, min_gap)
        assert merged
        assert min(merged) >= min(lines) - 1e-9
        assert max(merged) <= max(lines) + 1e-9


class TestCutLines:
    def test_requires_two_lines(self):
        with pytest.raises(ValueError):
            CutLines([3.0])
        with pytest.raises(ValueError):
            CutLines([3.0, 3.0])  # coincident

    def test_cells_and_bounds(self):
        cl = CutLines([0.0, 2.0, 5.0])
        assert cl.n_cells == 2
        assert cl.cell_bounds(0) == (0.0, 2.0)
        assert cl.cell_bounds(1) == (2.0, 5.0)
        with pytest.raises(IndexError):
            cl.cell_bounds(2)

    def test_cell_of_half_open_convention(self):
        cl = CutLines([0.0, 2.0, 5.0])
        assert cl.cell_of(0.0) == 0
        assert cl.cell_of(1.999) == 0
        assert cl.cell_of(2.0) == 1  # interior line belongs to the right
        assert cl.cell_of(5.0) == 1  # top line folds into the last cell

    def test_cell_of_out_of_span(self):
        cl = CutLines([0.0, 1.0])
        with pytest.raises(ValueError):
            cl.cell_of(-0.1)
        with pytest.raises(ValueError):
            cl.cell_of(1.1)

    def test_nearest_and_snap(self):
        cl = CutLines([0.0, 10.0, 30.0])
        assert cl.nearest_line_index(4.0) == 0
        assert cl.nearest_line_index(6.0) == 1
        assert cl.nearest_line_index(5.0) == 0  # tie goes left
        assert cl.snap(26.0) == 30.0
        assert cl.snap(-100.0) == 0.0
        assert cl.snap(99.0) == 30.0

    def test_iteration_and_len(self):
        cl = CutLines([1.0, 2.0, 3.0])
        assert list(cl) == [1.0, 2.0, 3.0]
        assert len(cl) == 3

    @given(
        st.lists(
            st.floats(0, 100, allow_nan=False), min_size=2, max_size=30
        ).filter(lambda ls: max(ls) - min(ls) > 1e-6),
        st.floats(0, 100),
    )
    def test_snap_returns_a_line(self, lines, x):
        try:
            cl = CutLines(lines)
        except ValueError:
            return  # all coincident after dedup
        assert cl.snap(x) in set(cl.lines)
