"""Tests for Point, Interval and Rect."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Interval, Point, Rect

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7

    def test_distance_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 4.5)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_unpacking(self):
        x, y = Point(3.0, 7.0)
        assert (x, y) == (3.0, 7.0)

    @given(coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.manhattan_distance(b) <= (
            a.manhattan_distance(origin) + origin.manhattan_distance(b) + 1e-6
        )


class TestInterval:
    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_contains(self):
        iv = Interval(1.0, 3.0)
        assert iv.contains(1.0) and iv.contains(3.0) and iv.contains(2.0)
        assert not iv.contains(0.999)

    def test_overlap_closed_vs_open(self):
        a, b = Interval(0, 1), Interval(1, 2)
        assert a.overlaps(b)
        assert not a.overlaps_open(b)

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_clamped(self):
        iv = Interval(-1.0, 1.0)
        assert iv.clamped(-5.0) == -1.0
        assert iv.clamped(0.5) == 0.5
        assert iv.clamped(9.0) == 1.0

    def test_expanded(self):
        assert Interval(1, 2).expanded(0.5) == Interval(0.5, 2.5)

    @given(coords, coords, coords, coords)
    def test_intersection_commutes(self, a1, a2, b1, b2):
        ia = Interval(min(a1, a2), max(a1, a2))
        ib = Interval(min(b1, b2), max(b1, b2))
        assert ia.intersection(ib) == ib.intersection(ia)


class TestRect:
    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_points_orders_corners(self):
        r = Rect.from_points(Point(5, 1), Point(2, 7))
        assert (r.x_lo, r.y_lo, r.x_hi, r.y_hi) == (2, 1, 5, 7)

    def test_from_origin(self):
        r = Rect.from_origin(1, 2, 3, 4)
        assert (r.x_hi, r.y_hi) == (4, 6)
        with pytest.raises(ValueError):
            Rect.from_origin(0, 0, -1, 1)

    def test_measures(self):
        r = Rect(0, 0, 4, 3)
        assert r.area == 12
        assert r.half_perimeter == 7
        assert r.center == Point(2.0, 1.5)

    def test_degenerate(self):
        assert Rect(1, 1, 1, 5).is_degenerate
        assert Rect(1, 1, 5, 1).is_degenerate
        assert not Rect(0, 0, 1, 1).is_degenerate

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_point(Point(10, 10))
        assert not outer.contains_rect(Rect(5, 5, 11, 6))

    def test_overlap_closed_vs_open(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 4, 2)  # shares an edge
        assert a.overlaps(b)
        assert not a.overlaps_open(b)

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 1, 6, 3)
        assert a.intersection(b) == Rect(2, 1, 4, 3)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_union_bbox(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, -1, 4, 5)
        assert a.union_bbox(b) == Rect(0, -1, 4, 5)

    def test_corners_ccw(self):
        r = Rect(0, 0, 2, 1)
        assert r.corners == (
            Point(0, 0),
            Point(2, 0),
            Point(2, 1),
            Point(0, 1),
        )

    @given(coords, coords, coords, coords)
    def test_routing_range_contains_both_pins(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        r = Rect.from_points(a, b)
        assert r.contains_point(a) and r.contains_point(b)
        assert r.half_perimeter == pytest.approx(
            a.manhattan_distance(b), rel=1e-9, abs=1e-9
        )
