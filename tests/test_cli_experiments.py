"""CLI experiment-command wiring tests (experiment runs are mocked --
the real runs live in benchmarks/)."""

from unittest import mock

from repro.cli import main
from repro.experiments.exp2 import Experiment2Result
from repro.experiments.exp3 import Experiment3Row
from repro.experiments.runner import Aggregate, RunRecord


def _fake_record():
    from repro.floorplan import Floorplan
    from repro.geometry import Rect

    floorplan = Floorplan({"m": Rect(0, 0, 10, 10)})
    return RunRecord(
        circuit="fake",
        seed=0,
        cost=1.0,
        area_um2=100.0,
        wirelength_um=50.0,
        congestion_cost=0.5,
        n_irgrids=9,
        runtime_seconds=0.1,
        judging_cost=0.2,
        floorplan=floorplan,
        result=None,
    )


def _fake_aggregate():
    return Aggregate(
        avg_area_mm2=1e-4,
        avg_wirelength_um=50.0,
        avg_congestion_cost=0.5,
        avg_n_irgrids=9.0,
        avg_runtime_seconds=0.1,
        avg_judging_cost=0.2,
        best=_fake_record(),
    )


class TestExperimentCommands:
    def test_experiment1_wiring(self, capsys):
        from repro.experiments.exp1 import Experiment1Row

        row = Experiment1Row(
            circuit="hp",
            baseline=_fake_aggregate(),
            congestion_aware=_fake_aggregate(),
        )
        with mock.patch(
            "repro.cli.run_experiment1", return_value={"hp": row}
        ) as run1:
            assert main(["experiment", "1", "--circuits", "hp"]) == 0
        run1.assert_called_once()
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_experiment2_wiring(self, capsys):
        result = Experiment2Result(
            circuit="ami33",
            ir_costs=[3.0, 2.0, 1.0],
            fine_judging_costs=[0.3, 0.2, 0.1],
            coarse_judging_costs=[0.6, 0.5, 0.4],
        )
        with mock.patch(
            "repro.cli.run_experiment2", return_value=result
        ) as run2:
            assert main(["experiment", "2"]) == 0
        run2.assert_called_once()
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "rank corr" in out

    def test_experiment3_wiring(self, capsys):
        rows = [
            Experiment3Row(
                model_kind="irgrid",
                grid_size=30.0,
                n_grids_avg=100.0,
                aggregate=_fake_aggregate(),
            ),
            Experiment3Row(
                model_kind="fixed",
                grid_size=50.0,
                n_grids_avg=400.0,
                aggregate=_fake_aggregate(),
            ),
        ]
        with mock.patch(
            "repro.cli.run_experiment3", return_value=rows
        ) as run3:
            assert main(["experiment", "3", "--circuit", "ami33"]) == 0
        run3.assert_called_once()
        out = capsys.readouterr().out
        assert "Tables 4-5" in out
        assert "faster" in out
