"""Tests for the string-keyed representation registry."""

import random

import pytest

from repro.engine import (
    CacheContext,
    Representation,
    available_representations,
    make_representation,
    register_representation,
)
from repro.netlist import random_circuit


class TestRegistry:
    def test_builtins_registered(self):
        names = available_representations()
        assert "polish" in names
        assert "sp" in names
        assert "btree" in names
        assert names == tuple(sorted(names))

    def test_unknown_name_lists_available(self):
        netlist = random_circuit(4, 6, seed=0)
        with pytest.raises(ValueError, match="polish"):
            make_representation("nope", netlist)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_representation(
                "polish", lambda netlist, rot, ctx: None
            )


class TestBuiltRepresentations:
    @pytest.mark.parametrize("name", ["polish", "sp", "btree"])
    def test_triple_drives_to_a_floorplan(self, name):
        netlist = random_circuit(6, 12, seed=1)
        rep = make_representation(name, netlist)
        assert isinstance(rep, Representation)
        assert rep.name == name
        rng = random.Random(1)
        state = rep.initial(rng)
        for _ in range(5):
            state = rep.neighbor(state, rng)
        floorplan = rep.realize(state)
        assert len(floorplan.placements) == netlist.n_modules
        assert floorplan.chip.area > 0

    def test_polish_realize_uses_engine_cache(self):
        netlist = random_circuit(6, 12, seed=2)
        ctx = CacheContext()
        rep = make_representation("polish", netlist, cache_context=ctx)
        rng = random.Random(2)
        state = rep.initial(rng)
        rep.realize(state)
        rep.realize(state)
        s = ctx.subtree_shapes.stats()
        assert s.lookups > 0
        assert s.hits > 0

    @pytest.mark.parametrize("name", ["polish", "sp", "btree"])
    def test_same_seed_same_walk(self, name):
        netlist = random_circuit(6, 12, seed=3)
        rep = make_representation(name, netlist)

        def walk():
            rng = random.Random(7)
            state = rep.initial(rng)
            for _ in range(10):
                state = rep.neighbor(state, rng)
            return rep.realize(state)

        a, b = walk(), walk()
        assert a.chip.width == b.chip.width
        assert a.chip.height == b.chip.height
