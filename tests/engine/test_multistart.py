"""Tests for best-of-N multi-start annealing.

The load-bearing property is determinism: because every restart owns a
fresh cache context and a fresh objective built from a picklable spec,
a process-pool run must be bit-identical to the sequential run over the
same seeds.
"""

import pytest

from repro.anneal.schedule import GeometricSchedule
from repro.engine import (
    AnnealEngine,
    MultiStartEngine,
    MultiStartResult,
    ObjectiveSpec,
)
from repro.netlist import random_circuit

SHORT = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1)


def _multi(netlist, **kwargs):
    kwargs.setdefault("restarts", 3)
    kwargs.setdefault("seed", 20)
    kwargs.setdefault("moves_per_temperature", 3 * netlist.n_modules)
    kwargs.setdefault("schedule", SHORT)
    return MultiStartEngine(netlist, **kwargs)


class TestMultiStart:
    def test_runs_distinct_seeds_and_picks_min(self):
        netlist = random_circuit(8, 20, seed=12)
        outcome = _multi(netlist).run()
        assert isinstance(outcome, MultiStartResult)
        assert [r.seed for r in outcome.results] == [20, 21, 22]
        assert outcome.best_cost == min(outcome.costs)
        assert outcome.best.cost == outcome.best_cost

    def test_restart_matches_standalone_engine(self):
        netlist = random_circuit(8, 20, seed=13)
        outcome = _multi(netlist, restarts=2).run()
        solo = AnnealEngine(
            netlist,
            representation="polish",
            seed=21,
            moves_per_temperature=3 * netlist.n_modules,
            schedule=SHORT,
        ).run()
        assert outcome.results[1].cost == solo.cost
        assert outcome.results[1].n_moves == solo.n_moves

    def test_parallel_is_bit_identical_to_sequential(self):
        netlist = random_circuit(8, 20, seed=14)
        sequential = _multi(netlist, workers=1).run()
        pooled = _multi(netlist, workers=3).run()
        assert pooled.workers == 3
        assert pooled.costs == sequential.costs
        assert pooled.best.seed == sequential.best.seed
        assert pooled.best.cost == sequential.best.cost
        assert pooled.best.breakdown == sequential.best.breakdown
        for a, b in zip(pooled.results, sequential.results):
            assert a.n_moves == b.n_moves
            assert a.n_accepted == b.n_accepted

    def test_pooled_results_carry_perf_and_cache_stats(self):
        netlist = random_circuit(6, 12, seed=15)
        outcome = _multi(netlist, restarts=2, workers=2).run()
        for r in outcome.results:
            assert r.perf is not None
            assert r.perf.counters.get("evaluations", 0) > 0
            assert r.cache_stats["subtree_shapes"].lookups > 0

    @pytest.mark.parametrize("name", ["sp", "btree"])
    def test_other_representations_multistart(self, name):
        netlist = random_circuit(6, 12, seed=16)
        outcome = _multi(netlist, restarts=2, representation=name).run()
        assert all(r.representation == name for r in outcome.results)
        assert outcome.best_cost > 0

    def test_objective_spec_reaches_restarts(self):
        netlist = random_circuit(6, 12, seed=17)
        spec = ObjectiveSpec(alpha=1.0, beta=0.0, gamma=0.0)
        outcome = _multi(netlist, restarts=2, objective_spec=spec).run()
        for r in outcome.results:
            assert r.breakdown.wirelength == 0.0

    def test_rejects_bad_counts(self):
        netlist = random_circuit(4, 8, seed=18)
        with pytest.raises(ValueError):
            MultiStartEngine(netlist, restarts=0)
        with pytest.raises(ValueError):
            MultiStartEngine(netlist, workers=0)
