"""Cross-backend parity: registry semantics, kernel properties, walks.

The ``"python"`` backend runs the exact compiled-path kernel functions
(numba-jitted where numba is installed, interpreted otherwise), so this
suite exercises the compiled backend's arithmetic on any machine; the
``"numba"`` entry additionally proves the graceful fallback when numba
is missing.  The contract under test (see
:mod:`repro.backend.registry`): congestion masses and wirelengths agree
with numpy to <= 1e-12 relative, MST edge lists bit-identically, and
whole annealing walks take identical accept/reject sequences.
"""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal.cost import FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.backend import (
    KernelBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.backend.kernels import (
    HAVE_NUMBA,
    exact_cell_probability,
    mst_fill,
    weighted_wirelength,
)
from repro.congestion.batched import batched_approx_mass
from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.irgrid import build_irgrid
from repro.engine import AnnealEngine
from repro.engine.multistart import ObjectiveSpec
from repro.geometry import Point, Rect
from repro.netlist import NetType, TwoPinNet, batched_mst_edges, random_circuit

CHIP = Rect(0, 0, 600, 600)


def _random_nets(rng, n):
    nets = []
    for i in range(n):
        x1, y1, x2, y2 = rng.uniform(0, 600, 4)
        nets.append(TwoPinNet(f"n{i}", Point(x1, y1), Point(x2, y2)))
    return nets


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert {"numpy", "numba", "python"} <= set(names)

    def test_default_is_numpy(self):
        be = make_backend(None)
        assert be.name == "numpy"
        assert be.mass_kernel is None
        assert be.mst_kernel is None
        assert be.wirelength_kernel is None
        assert be.jit_seconds == 0.0

    def test_instance_passes_through(self):
        be = make_backend("numpy")
        assert make_backend(be) is be

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cuda")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", lambda: None)

    def test_python_backend_has_kernels(self):
        be = make_backend("python")
        assert be.name == "python"
        assert be.mass_kernel is not None
        assert be.mst_kernel is not None
        assert be.wirelength_kernel is not None
        # Warm-up ran at construction and was timed.
        assert be.jit_seconds > 0.0
        assert be.compiled == HAVE_NUMBA

    def test_numba_backend_or_fallback(self):
        if HAVE_NUMBA:
            be = make_backend("numba")
            assert be.name == "numba"
            assert be.compiled
            assert be.mass_kernel is not None
        else:
            with pytest.warns(RuntimeWarning, match="falls back"):
                be = make_backend("numba")
            assert be.name == "numpy"
            assert be.requested == "numba"
            assert be.mass_kernel is None


class TestKernelProperties:
    """Random-input agreement between the kernel and numpy paths."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_exact_prob_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        g1 = int(rng.integers(2, 14))
        g2 = int(rng.integers(2, 14))
        x1 = int(rng.integers(0, g1))
        x2 = int(rng.integers(x1, g1))
        y1 = int(rng.integers(0, g2))
        y2 = int(rng.integers(y1, g2))
        ref = exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
        got = exact_cell_probability(g1, g2, x1, x2, y1, y2)
        assert got == pytest.approx(ref, abs=1e-12)

    @given(seed=st.integers(0, 10_000), merge=st.sampled_from([0.0, 2.0]))
    @settings(max_examples=20, deadline=None)
    def test_mass_matches_numpy(self, seed, merge):
        rng = np.random.default_rng(seed)
        nets = _random_nets(rng, int(rng.integers(1, 14)))
        irgrid = build_irgrid(CHIP, nets, 30.0, merge)
        be = make_backend("python")
        for pb in (False, True):
            ref = batched_approx_mass(irgrid, nets, 30.0, paper_bounds=pb)
            got = batched_approx_mass(
                irgrid, nets, 30.0, paper_bounds=pb, backend=be
            )
            np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_mst_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 8))
        k = int(rng.integers(3, 9))
        # Snapped coordinates produce frequent distance ties -- the
        # tie-breaking rule is the hard part of this parity.
        xs = rng.integers(0, 6, size=(m, k)).astype(float) * 30.0
        ys = rng.integers(0, 6, size=(m, k)).astype(float) * 30.0
        ref_i, ref_j = batched_mst_edges(xs, ys)
        out_i = np.empty((m, k - 1), dtype=np.int64)
        out_j = np.empty((m, k - 1), dtype=np.int64)
        mst_fill(xs, ys, out_i, out_j)
        assert (out_i == ref_i).all()
        assert (out_j == ref_j).all()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_wirelength_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        w = rng.uniform(0.5, 2.0, n)
        p1x, p1y, p2x, p2y = rng.uniform(0, 600, (4, n))
        ref = float((w * (np.abs(p2x - p1x) + np.abs(p2y - p1y))).sum())
        got = weighted_wirelength(w, p1x, p1y, p2x, p2y)
        assert got == pytest.approx(ref, rel=1e-12)

    def test_kernel_cached_equals_uncached_bitwise(self):
        # The net-mass memo stores kernel-produced vectors under a
        # backend-flagged signature; replaying from cache must be
        # bit-identical to computing fresh.
        rng = np.random.default_rng(5)
        nets = _random_nets(rng, 10)
        irgrid = build_irgrid(CHIP, nets, 30.0, 2.0)
        be = make_backend("python")
        from repro.perf import CacheContext

        ctx = CacheContext()
        fresh = batched_approx_mass(irgrid, nets, 30.0, backend=be)
        first = batched_approx_mass(
            irgrid, nets, 30.0, backend=be,
            cache=ctx.net_mass, exact_cache=ctx.exact_prob,
        )
        replay = batched_approx_mass(
            irgrid, nets, 30.0, backend=be,
            cache=ctx.net_mass, exact_cache=ctx.exact_prob,
        )
        assert (fresh == first).all()
        assert (first == replay).all()
        assert ctx.net_mass.stats().hits > 0


class TestWalkParity:
    """Whole strict-mode annealing walks take the same trajectory."""

    @pytest.mark.parametrize("representation", ["polish", "sp", "btree"])
    def test_strict_walk_matches_numpy(self, representation):
        netlist = random_circuit(8, 16, seed=3)
        results = {}
        for backend in ("numpy", "python"):
            spec = ObjectiveSpec(
                gamma=1.0,
                congestion_grid_size=30.0,
                strict_incremental=True,
                backend=backend,
            )
            engine = AnnealEngine(
                netlist,
                representation=representation,
                objective_spec=spec,
                seed=11,
                moves_per_temperature=18,
                schedule=GeometricSchedule(0.7, freeze_ratio=1e-2),
            )
            results[backend] = engine.run()
        a = results["numpy"]
        b = results["python"]
        assert a.n_moves >= 200  # a real walk, not a smoke run
        # Identical accept/reject sequence: same move count, same
        # accept count, and the per-temperature cost trajectory agrees.
        assert b.n_moves == a.n_moves
        assert b.n_accepted == a.n_accepted
        for s_a, s_b in zip(a.snapshots, b.snapshots):
            assert math.isclose(
                s_a.current_cost, s_b.current_cost, rel_tol=1e-9
            )
            assert math.isclose(s_a.best_cost, s_b.best_cost, rel_tol=1e-9)
        assert math.isclose(a.cost, b.cost, rel_tol=1e-9)


class TestObjectiveIntegration:
    def test_backend_injected_into_model_and_mst(self):
        from repro.congestion import IrregularGridModel

        netlist = random_circuit(6, 10, seed=1)
        model = IrregularGridModel(30.0)
        assert model.backend is None
        obj = FloorplanObjective(
            netlist, gamma=1.0, congestion_model=model, backend="python"
        )
        assert isinstance(obj.backend, KernelBackend)
        assert obj.backend.name == "python"
        assert model.backend is obj.backend
        assert obj.pipeline.mst.backend is obj.backend

    def test_model_keeps_own_backend(self):
        from repro.congestion import IrregularGridModel

        netlist = random_circuit(6, 10, seed=1)
        own = make_backend("numpy")
        model = IrregularGridModel(30.0, backend=own)
        obj = FloorplanObjective(
            netlist, gamma=1.0, congestion_model=model, backend="python"
        )
        assert model.backend is own
        assert obj.backend.name == "python"

    def test_jit_seconds_recorded_once(self):
        from repro.perf import PerfRecorder

        netlist = random_circuit(6, 10, seed=1)
        obj = FloorplanObjective(netlist, backend="python")
        assert obj.backend.jit_seconds > 0.0
        rec = PerfRecorder()
        obj.perf = rec
        assert "jit_compile_seconds" in rec.timers
        obj.perf = rec  # idempotent: warm-up happened exactly once
        assert rec.timers["jit_compile_seconds"].calls == 1

    def test_engine_backend_with_spec_raises(self):
        netlist = random_circuit(6, 10, seed=1)
        with pytest.raises(ValueError, match="backend"):
            AnnealEngine(
                netlist, objective_spec=ObjectiveSpec(), backend="python"
            )

    def test_numpy_backend_warmup_free(self):
        # The default path must not warm up kernels it will never call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            be = make_backend("numpy")
        assert be.jit_seconds == 0.0
