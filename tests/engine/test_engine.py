"""Tests for the unified annealing engine and the deprecated shims.

The engine must reproduce the deprecated per-representation annealers
bit-for-bit (they are now shims over it), own its caches so concurrent
engines never interact, and support every registered representation
through the incremental objective.
"""

import math
import warnings

import pytest

from repro.anneal import (
    BStarTreeAnnealer,
    FloorplanAnnealer,
    FloorplanObjective,
    SequencePairAnnealer,
)
from repro.anneal.schedule import GeometricSchedule
from repro.congestion import IrregularGridModel
from repro.engine import AnnealEngine, CacheContext, EngineResult
from repro.netlist import random_circuit

SHORT = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1)


def _engine(netlist, representation, seed=0, **kwargs):
    kwargs.setdefault("moves_per_temperature", 3 * netlist.n_modules)
    kwargs.setdefault("schedule", SHORT)
    return AnnealEngine(netlist, representation=representation, seed=seed,
                        **kwargs)


class TestEngineBasics:
    @pytest.mark.parametrize("name", ["polish", "sp", "btree"])
    def test_runs_every_representation(self, name):
        netlist = random_circuit(8, 20, seed=1)
        result = _engine(netlist, name, seed=1).run()
        assert isinstance(result, EngineResult)
        assert result.representation == name
        assert result.seed == 1
        assert result.n_moves > 0
        assert result.cost > 0
        assert len(result.floorplan.placements) == netlist.n_modules

    def test_same_seed_is_deterministic(self):
        netlist = random_circuit(8, 20, seed=2)
        a = _engine(netlist, "polish", seed=5).run()
        b = _engine(netlist, "polish", seed=5).run()
        assert a.cost == b.cost
        assert a.n_moves == b.n_moves
        assert a.n_accepted == b.n_accepted

    def test_result_carries_cache_stats(self):
        netlist = random_circuit(8, 20, seed=3)
        result = _engine(netlist, "polish", seed=3).run()
        assert set(result.cache_stats) == {
            "exact_prob", "net_mass", "net_matrix", "subtree_shapes",
        }
        assert result.cache_stats["subtree_shapes"].lookups > 0

    def test_objective_and_factory_are_exclusive(self):
        netlist = random_circuit(4, 8, seed=4)
        objective = FloorplanObjective(netlist)
        with pytest.raises(ValueError):
            AnnealEngine(
                netlist,
                objective=objective,
                objective_factory=lambda n, ctx: FloorplanObjective(
                    n, cache_context=ctx
                ),
            )

    def test_ready_objective_rejects_extra_context(self):
        netlist = random_circuit(4, 8, seed=4)
        with pytest.raises(ValueError):
            AnnealEngine(
                netlist,
                objective=FloorplanObjective(netlist),
                cache_context=CacheContext(),
            )

    def test_engine_adopts_objective_context(self):
        netlist = random_circuit(4, 8, seed=5)
        objective = FloorplanObjective(netlist)
        engine = AnnealEngine(netlist, objective=objective)
        assert engine.cache_context is objective.cache_context


class TestDeprecatedShims:
    def _legacy(self, cls, netlist, seed):
        with pytest.warns(DeprecationWarning):
            annealer = cls(
                netlist,
                seed=seed,
                moves_per_temperature=3 * netlist.n_modules,
                schedule=SHORT,
            )
        return annealer.run()

    @pytest.mark.parametrize(
        "cls,name",
        [
            (FloorplanAnnealer, "polish"),
            (SequencePairAnnealer, "sp"),
            (BStarTreeAnnealer, "btree"),
        ],
    )
    def test_shim_matches_engine_exactly(self, cls, name):
        netlist = random_circuit(8, 20, seed=6)
        legacy = self._legacy(cls, netlist, seed=6)
        engine = _engine(netlist, name, seed=6).run()
        assert legacy.cost == engine.cost
        assert legacy.n_moves == engine.n_moves
        assert legacy.n_accepted == engine.n_accepted
        assert legacy.breakdown == engine.breakdown

    def test_construction_warns_without_running(self):
        netlist = random_circuit(4, 8, seed=7)
        for cls in (FloorplanAnnealer, SequencePairAnnealer, BStarTreeAnnealer):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                cls(netlist)

    def test_engine_does_not_warn(self):
        netlist = random_circuit(4, 8, seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _engine(netlist, "polish")


class TestCacheIsolation:
    def test_concurrent_engines_never_cross_pollute(self):
        """Two engines over different circuits, run interleaved at the
        evaluation level, keep private caches and identical-to-solo
        results."""
        net_a = random_circuit(8, 20, seed=8)
        net_b = random_circuit(12, 30, seed=9)

        solo_a = _engine(net_a, "polish", seed=8).run()
        solo_b = _engine(net_b, "polish", seed=9).run()

        engine_a = _engine(net_a, "polish", seed=8)
        engine_b = _engine(net_b, "polish", seed=9)
        assert engine_a.cache_context is not engine_b.cache_context

        # Interleave: run B fully between A's construction and A's run,
        # then assert A is byte-identical to its solo run (B's cache
        # traffic, eviction pressure and accounting never reached A).
        inter_b = engine_b.run()
        inter_a = engine_a.run()
        assert inter_a.cost == solo_a.cost
        assert inter_a.n_moves == solo_a.n_moves
        assert inter_b.cost == solo_b.cost

        stats_a = engine_a.cache_context.stats()["subtree_shapes"]
        stats_b = engine_b.cache_context.stats()["subtree_shapes"]
        # Each context saw exactly its own engine's traffic.
        assert stats_a.lookups == solo_a.cache_stats["subtree_shapes"].lookups
        assert stats_b.lookups == solo_b.cache_stats["subtree_shapes"].lookups


class TestStrictIncrementalRepresentations:
    """sp and btree floorplans through the incremental objective with
    the strict (delta == full to 1e-12) tripwire armed, over long
    seeded walks."""

    @pytest.mark.parametrize("name", ["sp", "btree"])
    def test_strict_walk_200_moves(self, name):
        import random as _random

        from repro.engine import make_representation

        netlist = random_circuit(10, 30, seed=10)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        objective = FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(grid),
            incremental=True,
            strict_incremental=True,
        )
        rep = make_representation(
            name, netlist, cache_context=objective.cache_context
        )
        from repro.perf import PerfRecorder

        objective.perf = PerfRecorder()
        rng = _random.Random(10)
        state = rep.initial(rng)
        for _ in range(200):
            state = rep.neighbor(state, rng)
            objective.evaluate_floorplan(rep.realize(state))
        perf = objective.perf
        assert perf.counters.get("eval_delta", 0) > 0

    @pytest.mark.parametrize("name", ["sp", "btree"])
    def test_strict_anneal_completes(self, name):
        netlist = random_circuit(8, 20, seed=11)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)

        def factory(n, ctx):
            return FloorplanObjective(
                n,
                alpha=1.0,
                beta=1.0,
                gamma=1.0,
                congestion_model=IrregularGridModel(grid),
                incremental=True,
                strict_incremental=True,
                cache_context=ctx,
            )

        result = _engine(
            netlist, name, seed=11, objective_factory=factory
        ).run()
        assert result.n_moves > 0
