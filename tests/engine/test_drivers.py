"""Search-driver layer: registry, parity, resume, ledgers, reports.

The driver contracts under test:

* every driver produces **bit-identical** results sequentially and on
  a process pool (strict-parity walks run with
  ``strict_incremental=True``, so any full-vs-delta divergence raises
  inside the run);
* tempering and portfolio **resume bit-identically** from a
  round-boundary driver checkpoint -- same swap uniforms, same
  allocation decisions, same final costs;
* :class:`RunReport` / :class:`RestartFailure` round-trip **losslessly**
  through ``to_json`` / ``from_json`` and
  :func:`~repro.ioutil.atomic_write_json`.
"""

import json

import pytest

from repro.anneal import GeometricSchedule
from repro.engine import (
    DriverConfig,
    MultiStartDriver,
    ObjectiveSpec,
    RestartFailure,
    RunControl,
    RunReport,
    available_drivers,
    driver_descriptions,
    load_checkpoint,
    load_driver_checkpoint,
    make_driver,
    register_driver,
    resume_driver,
)
from repro.errors import CheckpointError
from repro.ioutil import atomic_write_json
from repro.netlist import random_circuit


@pytest.fixture(scope="module")
def netlist():
    return random_circuit(8, 20, seed=3)


def _config(netlist, **overrides):
    """A small but real driver config: congestion on, strict parity
    checking inside every evaluation, enough moves to matter."""
    defaults = dict(
        netlist=netlist,
        restarts=3,
        rounds=2,
        seed=1,
        objective_spec=ObjectiveSpec(
            gamma=1.0,
            pin_grid_size=30.0,
            congestion_grid_size=30.0,
            strict_incremental=True,
        ),
        moves_per_temperature=35,
        schedule=GeometricSchedule(
            cooling_rate=0.85, freeze_ratio=1e-3, max_steps=30
        ),
    )
    defaults.update(overrides)
    return DriverConfig(**defaults)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_drivers() == ("multistart", "portfolio", "tempering")

    def test_descriptions_cover_every_driver(self):
        descriptions = driver_descriptions()
        assert set(descriptions) == set(available_drivers())
        assert all(descriptions.values())

    def test_unknown_driver(self, netlist):
        with pytest.raises(ValueError, match="unknown driver"):
            make_driver("genetic", _config(netlist))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_driver("multistart", MultiStartDriver)

    def test_config_validation(self, netlist):
        with pytest.raises(ValueError, match="rounds"):
            _config(netlist, rounds=0)
        with pytest.raises(ValueError, match="ladder_ratio"):
            _config(netlist, ladder_ratio=1.5)
        with pytest.raises(ValueError, match="representations"):
            _config(netlist, representations=())


class TestMultiStartDriver:
    def test_matches_engine_exactly(self, netlist):
        from repro.engine import MultiStartEngine

        config = _config(netlist)
        driver_result = make_driver("multistart", config).run()
        engine_result = MultiStartEngine(
            netlist,
            restarts=config.restarts,
            seed=config.seed,
            objective_spec=config.objective_spec,
            moves_per_temperature=config.moves_per_temperature,
            schedule=config.schedule,
        ).run()
        assert driver_result.driver == "multistart"
        assert driver_result.best_cost == engine_result.best_cost
        assert driver_result.costs == engine_result.costs
        assert driver_result.ledger == {}

    def test_refuses_resume_state(self, netlist):
        with pytest.raises(ValueError, match="no driver-level schedule"):
            make_driver("multistart", _config(netlist)).run(
                resume_state={"round": 1}
            )


class TestDriverParity:
    """200+ strict-checked moves per driver, sequential == pooled."""

    @pytest.mark.parametrize("name", ["multistart", "tempering", "portfolio"])
    def test_sequential_equals_pool(self, netlist, name):
        # Even the shortest driver (tempering: 3 rungs x 2 rounds x 35
        # moves per sweep) clears 200 strict-checked moves.
        sequential = make_driver(name, _config(netlist, workers=1)).run()
        pooled = make_driver(name, _config(netlist, workers=2)).run()
        assert sum(r.n_moves for r in sequential.results) >= 200
        assert sequential.best_cost == pooled.best_cost
        assert sequential.costs == pooled.costs
        assert sequential.ledger == pooled.ledger
        assert [r.seed for r in sequential.results] == [
            r.seed for r in pooled.results
        ]

    def test_portfolio_allocation_decisions_identical(self, netlist):
        sequential = make_driver("portfolio", _config(netlist, workers=1)).run()
        pooled = make_driver("portfolio", _config(netlist, workers=2)).run()
        # The full ledger -- slots, kinds, seeds, per-leg costs -- must
        # agree, not just the winner.
        assert sequential.ledger["rounds"] == pooled.ledger["rounds"]

    def test_tempering_swap_sequence_identical(self, netlist):
        sequential = make_driver("tempering", _config(netlist, workers=1)).run()
        pooled = make_driver("tempering", _config(netlist, workers=2)).run()
        assert sequential.ledger["swaps"] == pooled.ledger["swaps"]
        assert sequential.ledger["ladder"] == pooled.ledger["ladder"]


class TestDriverResume:
    @pytest.mark.parametrize("name", ["tempering", "portfolio"])
    def test_resume_matches_straight_run(self, netlist, tmp_path, name):
        straight = make_driver(name, _config(netlist, rounds=3)).run()
        path = tmp_path / f"{name}.ckpt"
        make_driver(
            name, _config(netlist, rounds=2, checkpoint_path=str(path))
        ).run()
        driver, state = resume_driver(path, rounds=3)
        resumed = driver.run(resume_state=state)
        assert resumed.best_cost == straight.best_cost
        assert resumed.costs == straight.costs
        assert resumed.ledger == straight.ledger

    def test_tempering_swaps_reproduced_from_checkpoint(
        self, netlist, tmp_path
    ):
        """The resumed run's *remaining* swap proposals use the exact
        RNG stream the uninterrupted run would have consumed."""
        straight = make_driver("tempering", _config(netlist, rounds=4)).run()
        path = tmp_path / "t.ckpt"
        partial = make_driver(
            "tempering", _config(netlist, rounds=2, checkpoint_path=str(path))
        ).run()
        driver, state = resume_driver(path, rounds=4)
        resumed = driver.run(resume_state=state)
        n_partial = len(partial.ledger["swaps"])
        assert resumed.ledger["swaps"][:n_partial] == partial.ledger["swaps"]
        assert resumed.ledger["swaps"] == straight.ledger["swaps"]
        assert [r.rng_state for r in resumed.results] == [
            r.rng_state for r in straight.results
        ]

    def test_resume_under_different_worker_count(self, netlist, tmp_path):
        straight = make_driver("portfolio", _config(netlist, rounds=3)).run()
        path = tmp_path / "p.ckpt"
        make_driver(
            "portfolio",
            _config(netlist, rounds=2, checkpoint_path=str(path), workers=2),
        ).run()
        driver, state = resume_driver(path, workers=1, rounds=3)
        resumed = driver.run(resume_state=state)
        assert resumed.best_cost == straight.best_cost
        assert resumed.ledger == straight.ledger

    def test_checkpoint_stores_driver_name(self, netlist, tmp_path):
        path = tmp_path / "t.ckpt"
        make_driver(
            "tempering", _config(netlist, checkpoint_path=str(path))
        ).run()
        checkpoint = load_driver_checkpoint(path)
        assert checkpoint.driver == "tempering"
        assert checkpoint.config.restarts == 3
        assert checkpoint.state["round"] == 2

    def test_engine_checkpoint_refused_by_driver_loader(
        self, netlist, tmp_path
    ):
        from repro.engine import AnnealEngine

        path = tmp_path / "engine.ckpt"
        engine = AnnealEngine(
            netlist,
            objective_spec=ObjectiveSpec(pin_grid_size=30.0),
            moves_per_temperature=5,
        )
        control = RunControl(checkpoint_path=path)
        engine.run(control=control)
        with pytest.raises(CheckpointError, match="not a repro driver"):
            load_driver_checkpoint(path)

    def test_driver_checkpoint_refused_by_engine_loader(
        self, netlist, tmp_path
    ):
        path = tmp_path / "driver.ckpt"
        make_driver(
            "tempering", _config(netlist, checkpoint_path=str(path))
        ).run()
        with pytest.raises(CheckpointError, match="driver layer"):
            load_checkpoint(path)


class TestTemperingBehavior:
    def test_ladder_is_geometric_and_hot_first(self, netlist):
        result = make_driver("tempering", _config(netlist, restarts=4)).run()
        ladder = result.ledger["ladder"]
        assert len(ladder) == 4
        assert ladder == sorted(ladder, reverse=True)
        ratios = [ladder[i + 1] / ladder[i] for i in range(len(ladder) - 1)]
        for r in ratios[1:]:
            assert r == pytest.approx(ratios[0])

    def test_swap_ledger_alternates_parity(self, netlist):
        result = make_driver(
            "tempering", _config(netlist, restarts=4, rounds=2)
        ).run()
        by_round = {}
        for entry in result.ledger["swaps"]:
            by_round.setdefault(entry["round"], []).append(entry["low"])
        assert by_round[0] == [0, 2]
        assert by_round[1] == [1]

    def test_norms_shared_across_replicas(self, netlist):
        """Swaps only make sense when energies are comparable; every
        replica's breakdown must come from the same normalization."""
        result = make_driver("tempering", _config(netlist)).run()
        # All replicas annealed the same circuit under the same norms;
        # their costs are on one scale (all within a sane band).
        costs = result.costs
        assert max(costs) < 10 * min(costs)


class TestPortfolioBehavior:
    def test_round0_is_round_robin(self, netlist):
        result = make_driver("portfolio", _config(netlist, restarts=3)).run()
        round0 = result.ledger["rounds"][0]["legs"]
        assert [leg["arm"] for leg in round0] == ["polish", "sp", "btree"]
        assert all(leg["kind"] == "fresh" for leg in round0)

    def test_later_rounds_continue_and_migrate(self, netlist):
        result = make_driver(
            "portfolio", _config(netlist, restarts=6, rounds=2)
        ).run()
        round1 = result.ledger["rounds"][1]["legs"]
        kinds = {}
        for leg in round1:
            kinds.setdefault(leg["arm"], []).append(leg["kind"])
        for arm, arm_kinds in kinds.items():
            assert arm_kinds[0] == "continue"
            if len(arm_kinds) > 1:
                assert arm_kinds[1] == "migrate"

    def test_winners_get_surplus_slots(self, netlist):
        result = make_driver(
            "portfolio", _config(netlist, restarts=5, rounds=2)
        ).run()
        round1 = result.ledger["rounds"][1]
        slots = {}
        for leg in round1["legs"]:
            slots[leg["arm"]] = slots.get(leg["arm"], 0) + 1
        assert sum(slots.values()) == 5
        assert all(n >= 1 for n in slots.values())
        arm_costs = result.ledger["rounds"][0]["arm_best"]
        leaders = sorted(arm_costs, key=lambda a: (arm_costs[a], a))[:2]
        for leader in leaders:
            assert slots[leader] == 2

    def test_restarts_below_arm_count(self, netlist):
        result = make_driver(
            "portfolio", _config(netlist, restarts=2, rounds=2)
        ).run()
        round1 = result.ledger["rounds"][1]["legs"]
        assert len(round1) == 2


class TestRunReportRoundTrip:
    def _sample_reports(self):
        clean = RunReport(seed=7, status="ok", attempts=1, mode="pool")
        scarred = RunReport(
            seed=8,
            status="ok",
            attempts=3,
            mode="sequential",
            failures=[
                RestartFailure(0, "crash", "worker process died: boom"),
                RestartFailure(1, "timeout", "no result within 0.5s"),
            ],
            label="round 2 / btree / migrate",
        )
        failed = RunReport(
            seed=9,
            status="failed",
            attempts=2,
            failures=[
                RestartFailure(0, "error", "ValueError: bad"),
                RestartFailure(1, "error", "ValueError: bad"),
            ],
        )
        return [clean, scarred, failed]

    def test_to_from_json_is_lossless(self):
        for report in self._sample_reports():
            assert RunReport.from_json(report.to_json()) == report

    def test_failures_stay_structured(self):
        report = self._sample_reports()[1]
        payload = report.to_json()
        assert payload["failures"][0] == {
            "attempt": 0,
            "kind": "crash",
            "message": "worker process died: boom",
        }
        assert payload["label"] == "round 2 / btree / migrate"

    def test_round_trip_through_atomic_write_json(self, tmp_path):
        reports = self._sample_reports()
        path = tmp_path / "reports.json"
        atomic_write_json(path, {"reports": [r.to_json() for r in reports]})
        loaded = json.loads(path.read_text())
        assert [
            RunReport.from_json(r) for r in loaded["reports"]
        ] == reports

    def test_driver_reports_round_trip(self, netlist):
        result = make_driver("portfolio", _config(netlist)).run()
        for report in result.reports:
            assert RunReport.from_json(report.to_json()) == report
            json.dumps(report.to_json())  # JSON-serializable as-is
