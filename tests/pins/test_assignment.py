"""Tests for intersection-to-intersection pin assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Module, Net, Netlist
from repro.pins import assign_pins, perimeter_point, snap_to_lattice

CHIP = Rect(0, 0, 100, 100)


class TestSnapToLattice:
    def test_rounds_to_nearest(self):
        assert snap_to_lattice(Point(12, 18), CHIP, 10.0) == Point(10, 20)

    def test_exact_points_unchanged(self):
        assert snap_to_lattice(Point(30, 40), CHIP, 10.0) == Point(30, 40)

    def test_clamped_into_chip(self):
        assert snap_to_lattice(Point(104, -3), CHIP, 10.0) == Point(100, 0)

    def test_anchored_at_chip_origin(self):
        chip = Rect(5, 5, 95, 95)
        snapped = snap_to_lattice(Point(17, 17), chip, 10.0)
        assert snapped == Point(15, 15)

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            snap_to_lattice(Point(0, 0), CHIP, 0.0)

    @given(
        st.floats(0, 100),
        st.floats(0, 100),
        st.floats(1, 30),
    )
    def test_snap_moves_at_most_half_pitch(self, x, y, pitch):
        snapped = snap_to_lattice(Point(x, y), CHIP, pitch)
        # Clamping can add displacement only at the chip border.
        if pitch / 2 < x < 100 - pitch / 2 and pitch / 2 < y < 100 - pitch / 2:
            assert abs(snapped.x - x) <= pitch / 2 + 1e-9
            assert abs(snapped.y - y) <= pitch / 2 + 1e-9
        assert CHIP.contains_point(snapped)


class TestPerimeterPoint:
    RECT = Rect(10, 20, 50, 40)  # w=40, h=20, perimeter=120

    def test_corners(self):
        assert perimeter_point(self.RECT, 0.0) == Point(10, 20)
        assert perimeter_point(self.RECT, 40 / 120) == Point(50, 20)
        assert perimeter_point(self.RECT, 60 / 120) == Point(50, 40)
        assert perimeter_point(self.RECT, 100 / 120) == Point(10, 40)

    def test_wraps_modulo_one(self):
        assert perimeter_point(self.RECT, 1.25) == perimeter_point(
            self.RECT, 0.25
        )

    def test_degenerate_rect_center(self):
        r = Rect(5, 5, 5, 5)
        assert perimeter_point(r, 0.7) == r.center

    @given(st.floats(0, 1))
    def test_always_on_boundary(self, fraction):
        p = perimeter_point(self.RECT, fraction)
        on_x_edge = p.x in (self.RECT.x_lo, self.RECT.x_hi)
        on_y_edge = p.y in (self.RECT.y_lo, self.RECT.y_hi)
        assert self.RECT.contains_point(p)
        assert on_x_edge or on_y_edge


def instance():
    modules = [Module("a", 40, 40), Module("b", 40, 40)]
    nets = [Net("n0", ("a", "b")), Net("n1", ("a", "b")), Net("n2", ("a", "b"))]
    netlist = Netlist("two", modules, nets)
    floorplan = Floorplan(
        {"a": Rect(0, 0, 40, 40), "b": Rect(60, 60, 100, 100)},
        chip=CHIP,
    )
    return floorplan, netlist


class TestAssignPins:
    def test_all_nets_assigned(self):
        floorplan, netlist = instance()
        pa = assign_pins(floorplan, netlist, 10.0)
        assert set(pa.pin_locations) == {"n0", "n1", "n2"}
        assert pa.n_two_pin == 3

    def test_pins_on_lattice(self):
        floorplan, netlist = instance()
        pa = assign_pins(floorplan, netlist, 10.0)
        for locations in pa.pin_locations.values():
            for p in locations.values():
                assert (p.x - CHIP.x_lo) % 10.0 == pytest.approx(0.0, abs=1e-9)
                assert (p.y - CHIP.y_lo) % 10.0 == pytest.approx(0.0, abs=1e-9)

    def test_perimeter_spreads_pins(self):
        floorplan, netlist = instance()
        pa = assign_pins(floorplan, netlist, 10.0, pin_style="perimeter")
        a_pins = {pa.pin_locations[n][("a")] for n in ("n0", "n1", "n2")}
        assert len(a_pins) > 1  # distinct perimeter positions

    def test_center_style_shares_one_point(self):
        floorplan, netlist = instance()
        pa = assign_pins(floorplan, netlist, 10.0, pin_style="center")
        a_pins = {pa.pin_locations[n]["a"] for n in ("n0", "n1", "n2")}
        assert len(a_pins) == 1
        assert a_pins.pop() == Point(20, 20)

    def test_pins_inside_chip(self):
        floorplan, netlist = instance()
        for style in ("perimeter", "center"):
            pa = assign_pins(floorplan, netlist, 7.0, pin_style=style)
            for locations in pa.pin_locations.values():
                for p in locations.values():
                    assert CHIP.contains_point(p)

    def test_unknown_style(self):
        floorplan, netlist = instance()
        with pytest.raises(ValueError):
            assign_pins(floorplan, netlist, 10.0, pin_style="bogus")

    def test_deterministic(self):
        floorplan, netlist = instance()
        a = assign_pins(floorplan, netlist, 10.0)
        b = assign_pins(floorplan, netlist, 10.0)
        assert a.pin_locations == b.pin_locations

    def test_unplaced_terminal_raises(self):
        _, netlist = instance()
        partial = Floorplan({"a": Rect(0, 0, 40, 40)}, chip=CHIP)
        with pytest.raises(KeyError):
            assign_pins(partial, netlist, 10.0)


class TestFacingStyle:
    def test_pin_on_boundary_toward_partner(self):
        floorplan, netlist = instance()
        pa = assign_pins(floorplan, netlist, 10.0, pin_style="facing")
        # Module a at (0,0)-(40,40), b at (60,60)-(100,100): a's pins
        # face up-right, b's face down-left.
        for n in ("n0", "n1", "n2"):
            ap = pa.pin_locations[n]["a"]
            bp = pa.pin_locations[n]["b"]
            assert ap.x >= 30 and ap.y >= 30
            assert bp.x <= 70 and bp.y <= 70

    def test_facing_reduces_wirelength_vs_perimeter(self):
        from repro.metrics import total_two_pin_length

        floorplan, netlist = instance()
        facing = assign_pins(floorplan, netlist, 10.0, pin_style="facing")
        perimeter = assign_pins(floorplan, netlist, 10.0, pin_style="perimeter")
        assert total_two_pin_length(facing.two_pin_nets) <= (
            total_two_pin_length(perimeter.two_pin_nets) + 1e-9
        )

    def test_boundary_point_toward_interior_target(self):
        from repro.geometry import Rect
        from repro.pins.assignment import _boundary_point_toward

        rect = Rect(0, 0, 10, 10)
        p = _boundary_point_toward(rect, 5.0, 9.0)  # inside, near top
        assert p.y == 10.0 and p.x == 5.0

    def test_boundary_point_toward_outside_target(self):
        from repro.geometry import Rect
        from repro.pins.assignment import _boundary_point_toward

        rect = Rect(0, 0, 10, 10)
        p = _boundary_point_toward(rect, 50.0, 5.0)
        assert (p.x, p.y) == (10.0, 5.0)
