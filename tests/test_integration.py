"""Cross-module integration tests: the full pipeline end to end."""

import random

import pytest

from repro import (
    FixedGridModel,
    FloorplanAnnealer,
    FloorplanObjective,
    IrregularGridModel,
    JudgingModel,
    assign_pins,
    clustered_circuit,
    evaluate_polish,
    initial_expression,
)
from repro.anneal import GeometricSchedule
from repro.data import load_mcnc
from repro.floorplan import SequencePair, pack_sequence_pair
from repro.metrics import total_two_pin_length
from repro.routing import GlobalRouter, RoutingGrid, overflow_report
from repro.routing.overflow import rank_correlation

FAST = GeometricSchedule(cooling_rate=0.6, freeze_ratio=0.05, max_steps=6)


class TestFullPipeline:
    def test_mcnc_to_congestion_map(self):
        """load -> pack -> pins -> IR model -> score, on real scale."""
        circuit = load_mcnc("hp")
        expr = initial_expression(
            [m.name for m in circuit.modules], random.Random(0)
        )
        floorplan = evaluate_polish(
            expr, {m.name: m for m in circuit.modules}
        )
        floorplan.validate()
        assignment = assign_pins(floorplan, circuit, 30.0)
        assert assignment.n_two_pin >= circuit.n_nets
        model = IrregularGridModel(30.0)
        cmap, irgrid = model.evaluate_with_grid(
            floorplan.chip, assignment.two_pin_nets
        )
        assert irgrid.n_cells == cmap.n_cells
        assert model.score(cmap) > 0
        assert cmap.total_mass > 0

    def test_congestion_aware_beats_blind_on_congested_circuit(self):
        """The paper's core claim (Experiment 1) on a small clustered
        circuit: adding the IR term reduces judged congestion."""
        circuit = clustered_circuit(
            10, 40, n_clusters=2, intra_cluster_prob=0.9, seed=5
        )
        judge = JudgingModel(grid_size=15.0)

        def run(gamma):
            if gamma:
                obj = FloorplanObjective(
                    circuit,
                    alpha=1,
                    beta=1,
                    gamma=gamma,
                    congestion_model=IrregularGridModel(60.0),
                )
            else:
                obj = FloorplanObjective(
                    circuit, alpha=1, beta=1, pin_grid_size=60.0
                )
            costs = []
            for seed in range(3):
                annealer = FloorplanAnnealer(
                    circuit,
                    objective=obj,
                    seed=seed,
                    schedule=GeometricSchedule(
                        cooling_rate=0.7, freeze_ratio=0.02, max_steps=12
                    ),
                    moves_per_temperature=40,
                )
                result = annealer.run()
                costs.append(judge.judge(result.floorplan, circuit))
            return sum(costs) / len(costs)

        blind = run(0.0)
        aware = run(1.5)
        # Direction check with slack for annealing noise: congestion-
        # aware must not be materially worse.
        assert aware <= blind * 1.10

    def test_ir_estimate_correlates_with_routed_overflow(self):
        """Extension: the model's density map must rank-correlate with
        an actual router's per-cell utilization."""
        circuit = load_mcnc("hp")
        rng = random.Random(2)
        expr = initial_expression([m.name for m in circuit.modules], rng)
        floorplan = evaluate_polish(expr, {m.name: m for m in circuit.modules})
        assignment = assign_pins(floorplan, circuit, 30.0)

        grid = RoutingGrid(floorplan.chip, cell_size=100.0, capacity=20)
        GlobalRouter(grid).route(assignment.two_pin_nets)
        util = grid.cell_utilization()

        fixed = FixedGridModel(100.0)
        estimate = fixed.evaluate_array(floorplan.chip, assignment.two_pin_nets)
        # Compare on the common shape.
        n_c = min(util.shape[0], estimate.shape[0])
        n_r = min(util.shape[1], estimate.shape[1])
        corr = rank_correlation(
            util[:n_c, :n_r].ravel(), estimate[:n_c, :n_r].ravel()
        )
        assert corr > 0.5

        report = overflow_report(grid)
        assert report.n_edges > 0

    def test_sequence_pair_floorplans_judge_comparably(self):
        """The congestion model is floorplanner-agnostic: it scores
        sequence-pair packings just as it scores slicing packings."""
        circuit = load_mcnc("hp")
        rng = random.Random(4)
        sp = SequencePair.initial([m.name for m in circuit.modules], rng)
        floorplan = pack_sequence_pair(sp, {m.name: m for m in circuit.modules})
        floorplan.validate()
        assignment = assign_pins(floorplan, circuit, 30.0)
        score = IrregularGridModel(30.0).estimate(
            floorplan.chip, assignment.two_pin_nets
        )
        assert score > 0

    def test_wirelength_decreases_under_wl_objective(self):
        circuit = load_mcnc("hp")
        obj = FloorplanObjective(circuit, alpha=0.2, beta=2.0, pin_grid_size=30.0)
        annealer = FloorplanAnnealer(
            circuit,
            objective=obj,
            seed=0,
            schedule=FAST,
            moves_per_temperature=30,
        )
        result = annealer.run()
        first_wl = result.snapshots[0].breakdown.wirelength
        assert result.breakdown.wirelength <= first_wl * 1.001

    def test_exact_and_approx_scores_track_each_other(self):
        """Across random floorplans the Theorem-1 score must stay close
        to the exact Formula-3 score (the approximation's purpose)."""
        circuit = load_mcnc("ami33")
        modules = {m.name: m for m in circuit.modules}
        approx = IrregularGridModel(30.0, method="approx")
        exact = IrregularGridModel(30.0, method="exact")
        rng = random.Random(9)
        for _ in range(3):
            expr = initial_expression(list(modules), rng)
            floorplan = evaluate_polish(expr, modules)
            assignment = assign_pins(floorplan, circuit, 30.0)
            sa = approx.estimate(floorplan.chip, assignment.two_pin_nets)
            se = exact.estimate(floorplan.chip, assignment.two_pin_nets)
            assert sa == pytest.approx(se, rel=0.05)

    def test_wirelength_metric_consistency(self):
        circuit = load_mcnc("hp")
        rng = random.Random(1)
        expr = initial_expression([m.name for m in circuit.modules], rng)
        floorplan = evaluate_polish(expr, {m.name: m for m in circuit.modules})
        assignment = assign_pins(floorplan, circuit, 30.0)
        wl = total_two_pin_length(assignment.two_pin_nets)
        assert wl > 0
        # Every 2-pin length is bounded by the chip half-perimeter.
        for net in assignment.two_pin_nets:
            assert net.manhattan_length <= floorplan.chip.half_perimeter + 1e-6
