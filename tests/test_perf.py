"""Tests for the :mod:`repro.perf` instrumentation."""

import time

from repro.perf import NULL_RECORDER, PerfRecorder, PhaseStat


class TestPhaseStat:
    def test_ms_per_call(self):
        stat = PhaseStat(seconds=0.5, calls=250)
        assert stat.ms_per_call == 2.0

    def test_ms_per_call_zero_calls(self):
        assert PhaseStat().ms_per_call == 0.0


class TestPerfRecorder:
    def test_timeit_accumulates(self):
        perf = PerfRecorder()
        for _ in range(3):
            with perf.timeit("phase"):
                time.sleep(0.001)
        stat = perf.timers["phase"]
        assert stat.calls == 3
        assert stat.seconds >= 0.003

    def test_add_time_direct(self):
        perf = PerfRecorder()
        perf.add_time("x", 1.0)
        perf.add_time("x", 2.0)
        assert perf.timers["x"].seconds == 3.0
        assert perf.timers["x"].calls == 2

    def test_counters(self):
        perf = PerfRecorder()
        perf.count("evals")
        perf.count("evals", 4)
        assert perf.counters["evals"] == 5

    def test_merge(self):
        a = PerfRecorder()
        b = PerfRecorder()
        a.add_time("shared", 1.0)
        b.add_time("shared", 2.0)
        b.add_time("only_b", 0.5)
        a.count("n", 1)
        b.count("n", 2)
        a.merge(b)
        assert a.timers["shared"].seconds == 3.0
        assert a.timers["shared"].calls == 2
        assert a.timers["only_b"].calls == 1
        assert a.counters["n"] == 3

    def test_snapshot_round_trip(self):
        perf = PerfRecorder()
        perf.add_time("t", 0.25)
        perf.count("c", 7)
        snap = perf.snapshot()
        assert snap["timers"]["t"] == {"seconds": 0.25, "calls": 1}
        assert snap["counters"]["c"] == 7
        # The snapshot is a copy, not a view.
        snap["counters"]["c"] = 0
        assert perf.counters["c"] == 7

    def test_report_mentions_phases_and_counters(self):
        perf = PerfRecorder()
        perf.add_time("packing", 0.1)
        perf.count("evaluations", 42)
        text = perf.report(title="run")
        assert "run" in text
        assert "packing" in text
        assert "evaluations=42" in text

    def test_empty_report(self):
        assert isinstance(PerfRecorder().report(), str)


class TestNullRecorder:
    def test_accepts_everything_records_nothing(self):
        with NULL_RECORDER.timeit("phase"):
            pass
        NULL_RECORDER.count("c", 3)
        NULL_RECORDER.add_time("t", 1.0)
        assert NULL_RECORDER.timers == {}
        assert NULL_RECORDER.counters == {}
