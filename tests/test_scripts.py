"""Wiring tests for the scripts (experiment runs are mocked)."""

import pickle
import runpy
import sys
from unittest import mock

import pytest


def run_script(path, argv):
    with mock.patch.object(sys, "argv", argv):
        return runpy.run_path(path, run_name="__main__")


class TestRunExperiments:
    def _module(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "run_experiments", "scripts/run_experiments.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_exp1_writes_pickle_and_render_merges(self, tmp_path, capsys):
        module = self._module()
        from repro.experiments.exp1 import Experiment1Row
        from tests.test_cli_experiments import _fake_aggregate

        row = Experiment1Row(
            circuit="hp",
            baseline=_fake_aggregate(),
            congestion_aware=_fake_aggregate(),
        )
        with mock.patch.object(module, "RESULTS", tmp_path), mock.patch.object(
            module, "PARTS", tmp_path / "exp1_parts"
        ), mock.patch.object(
            module, "run_experiment1", return_value={"hp": row}
        ):
            with mock.patch.object(sys, "argv", ["x", "exp1", "hp"]):
                assert module.main() == 0
            pkl = tmp_path / "exp1_parts" / "hp.pkl"
            assert pkl.exists()
            with open(pkl, "rb") as fh:
                assert "hp" in pickle.load(fh)
            with mock.patch.object(sys, "argv", ["x", "render1"]):
                assert module.main() == 0
            rendered = list(tmp_path.glob("exp1_*.txt"))
            assert rendered
            assert "Table 3" in rendered[0].read_text()

    def test_unknown_step_rejected(self, tmp_path):
        module = self._module()
        with mock.patch.object(module, "RESULTS", tmp_path):
            with mock.patch.object(sys, "argv", ["x", "bogus"]):
                with pytest.raises(SystemExit):
                    module.main()


class TestMakeFigures:
    def test_figure8_and_motivation_outputs(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "make_figures", "scripts/make_figures.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.figure8(tmp_path)
        module.motivation(tmp_path)
        names = {p.name for p in tmp_path.glob("*.svg")}
        assert "figure8b.svg" in names
        assert "figure8d.svg" in names
        assert "figure3_4cols.svg" in names
        assert "figure4_12cols.svg" in names
        svg = (tmp_path / "figure8b.svg").read_text()
        assert svg.startswith("<svg")
