"""Tests for the placement file format."""

import pytest

from repro.data import (
    dumps_placement,
    loads_placement,
    read_placement,
    write_placement,
)
from repro.data.placement import PlacementError
from repro.floorplan import Floorplan
from repro.geometry import Rect


def sample():
    return Floorplan(
        {"a": Rect(0, 0, 10.5, 20), "b": Rect(10.5, 0, 15.5, 5)},
        chip=Rect(0, 0, 20, 20),
    )


class TestRoundTrip:
    def test_dumps_loads(self):
        fp = loads_placement(dumps_placement(sample(), name="demo"))
        assert fp.placement("a") == Rect(0, 0, 10.5, 20)
        assert fp.placement("b").width == 5
        assert fp.chip == Rect(0, 0, 20, 20)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "fp.place"
        write_placement(sample(), path, name="demo")
        fp = read_placement(path)
        assert set(fp.module_names) == {"a", "b"}

    def test_annealed_floorplan_round_trip(self):
        import random

        from repro.data import load_mcnc
        from repro.floorplan import evaluate_polish, initial_expression

        circuit = load_mcnc("hp")
        modules = {m.name: m for m in circuit.modules}
        expr = initial_expression(list(modules), random.Random(0))
        original = evaluate_polish(expr, modules)
        restored = loads_placement(dumps_placement(original, "hp"))
        assert restored.chip.area == pytest.approx(original.chip.area, rel=1e-5)
        for name in original.module_names:
            assert restored.placement(name).area == pytest.approx(
                original.placement(name).area, rel=1e-5
            )


class TestParsing:
    def test_comments_and_optional_chip(self):
        text = """
        # saved by a tool
        PLACEMENT p
        MODULE a 0 0 5 5
        MODULE b 5 0 5 5
        """
        fp = loads_placement(text)
        assert fp.chip == Rect(0, 0, 10, 5)  # bbox fallback

    def test_errors(self):
        with pytest.raises(PlacementError, match="PLACEMENT"):
            loads_placement("MODULE a 0 0 1 1\n")
        with pytest.raises(PlacementError, match="second PLACEMENT"):
            loads_placement("PLACEMENT a\nPLACEMENT b\n")
        with pytest.raises(PlacementError, match="line 2"):
            loads_placement("PLACEMENT p\nMODULE a 0 0 1\n")
        with pytest.raises(PlacementError, match="twice"):
            loads_placement(
                "PLACEMENT p\nMODULE a 0 0 1 1\nMODULE a 2 0 1 1\n"
            )
        with pytest.raises(PlacementError, match="unknown directive"):
            loads_placement("PLACEMENT p\nBOGUS\n")
        with pytest.raises(PlacementError, match="no modules"):
            loads_placement("PLACEMENT p\nEND\n")
        with pytest.raises(PlacementError, match="after END"):
            loads_placement("PLACEMENT p\nMODULE a 0 0 1 1\nEND\nMODULE b 1 0 1 1\n")

    def test_overlapping_placement_rejected(self):
        text = "PLACEMENT p\nMODULE a 0 0 5 5\nMODULE b 2 2 5 5\n"
        with pytest.raises(PlacementError, match="overlap"):
            loads_placement(text)
