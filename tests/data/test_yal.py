"""Tests for the YAL-flavoured circuit format."""

import pytest

from repro.data import dumps_yal, loads_yal, read_yal, write_yal
from repro.data.yal import YalError
from repro.netlist import Module, Net, Netlist


def sample():
    return Netlist(
        "demo",
        [Module("a", 10.5, 20), Module("b", 5, 5)],
        [Net("n0", ("a", "b"), weight=2.5)],
    )


class TestRoundTrip:
    def test_dumps_loads(self):
        nl = loads_yal(dumps_yal(sample()))
        assert nl.name == "demo"
        assert nl.n_modules == 2
        assert nl.module("a").width == 10.5
        assert nl.net("n0").weight == 2.5
        assert nl.net("n0").terminals == ("a", "b")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "c.yal"
        write_yal(sample(), path)
        nl = read_yal(path)
        assert nl.name == "demo"
        assert nl.n_nets == 1

    def test_mcnc_round_trip(self):
        from repro.data import load_mcnc

        original = load_mcnc("hp")
        restored = loads_yal(dumps_yal(original))
        assert restored.n_modules == original.n_modules
        assert restored.n_nets == original.n_nets
        assert restored.total_module_area == pytest.approx(
            original.total_module_area
        )


class TestParsing:
    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        CIRCUIT c

        MODULE a 1 2  # trailing comment
        MODULE b 3 4
        NET n 1.0 a b
        END
        """
        nl = loads_yal(text)
        assert nl.n_modules == 2

    def test_end_optional(self):
        nl = loads_yal("CIRCUIT c\nMODULE a 1 2\nMODULE b 1 2\nNET n 1 a b\n")
        assert nl.n_nets == 1

    def test_case_insensitive_directives(self):
        nl = loads_yal("circuit c\nmodule a 1 2\nmodule b 1 1\nnet n 1 a b\n")
        assert nl.name == "c"


class TestErrors:
    def test_missing_circuit(self):
        with pytest.raises(YalError, match="CIRCUIT"):
            loads_yal("MODULE a 1 2\n")

    def test_double_circuit(self):
        with pytest.raises(YalError, match="second CIRCUIT"):
            loads_yal("CIRCUIT a\nCIRCUIT b\n")

    def test_unknown_directive(self):
        with pytest.raises(YalError, match="line 2"):
            loads_yal("CIRCUIT c\nBOGUS x\n")

    def test_malformed_module(self):
        with pytest.raises(YalError, match="line 2"):
            loads_yal("CIRCUIT c\nMODULE a 1\n")

    def test_bad_number(self):
        with pytest.raises(YalError, match="line 2"):
            loads_yal("CIRCUIT c\nMODULE a one 2\n")

    def test_net_too_few_terminals(self):
        with pytest.raises(YalError):
            loads_yal("CIRCUIT c\nMODULE a 1 2\nNET n 1.0 a\n")

    def test_dangling_terminal(self):
        with pytest.raises(YalError, match="unknown modules"):
            loads_yal("CIRCUIT c\nMODULE a 1 2\nMODULE b 1 1\nNET n 1 a zz\n")

    def test_content_after_end(self):
        with pytest.raises(YalError, match="after END"):
            loads_yal("CIRCUIT c\nMODULE a 1 2\nEND\nMODULE b 1 1\n")
