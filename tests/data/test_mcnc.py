"""Tests for the synthetic MCNC-like circuits."""

import pytest

from repro.data import MCNC_CIRCUITS, load_mcnc, mcnc_stats


EXPECTED = {
    "apte": (9, 97, 46.5616e6),
    "xerox": (10, 203, 19.3503e6),
    "hp": (11, 83, 8.8306e6),
    "ami33": (33, 123, 1.1564e6),
    "ami49": (49, 408, 35.4450e6),
}


class TestPublishedStatistics:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_module_and_net_counts(self, name):
        nl = load_mcnc(name)
        modules, nets, _ = EXPECTED[name]
        assert nl.n_modules == modules
        assert nl.n_nets == nets

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_total_area_matches(self, name):
        nl = load_mcnc(name)
        _, _, area = EXPECTED[name]
        # Dimension rounding perturbs the total by well under 0.1%.
        assert nl.total_module_area == pytest.approx(area, rel=1e-3)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_net_degrees_realistic(self, name):
        nl = load_mcnc(name)
        hist = nl.degree_histogram()
        assert min(hist) >= 2
        assert max(hist) <= 6
        # 2-pin nets dominate, as in real block netlists.
        assert hist[2] > nl.n_nets * 0.4


class TestDeterminism:
    def test_same_circuit_every_time(self):
        a = load_mcnc("ami33")
        b = load_mcnc("ami33")
        assert [(m.name, m.width, m.height) for m in a.modules] == [
            (m.name, m.width, m.height) for m in b.modules
        ]
        assert [n.terminals for n in a.nets] == [n.terminals for n in b.nets]

    def test_case_insensitive(self):
        assert load_mcnc("AMI33").name == "ami33"

    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown MCNC circuit"):
            load_mcnc("bogus")

    def test_stats_accessor(self):
        spec = mcnc_stats("apte")
        assert spec.n_modules == 9
        assert spec.name == "apte"

    def test_registry_complete(self):
        assert set(MCNC_CIRCUITS) == set(EXPECTED)


class TestGeometryQuality:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_aspect_ratios_bounded(self, name):
        nl = load_mcnc(name)
        spec = mcnc_stats(name)
        for m in nl.modules:
            ratio = max(m.width / m.height, m.height / m.width)
            assert ratio <= spec.max_aspect + 0.05

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_area_heterogeneity(self, name):
        nl = load_mcnc(name)
        areas = sorted(m.area for m in nl.modules)
        # The spread spans at least a factor of 2 (real benchmarks mix
        # large and small blocks).
        assert areas[-1] / areas[0] > 2.0
