"""Checksum guards: the synthetic benchmarks must never silently drift.

EXPERIMENTS.md quotes numbers produced from these exact circuits; any
change to the generators (even an innocent refactor reordering RNG
draws) would silently invalidate them.  These tests pin a cheap
structural digest of every bundled circuit; if a change is
*intentional*, update the digests and regenerate EXPERIMENTS.md.
"""

import hashlib

import pytest

from repro.data import dumps_yal, load_mcnc


def digest(name: str) -> str:
    return hashlib.sha256(dumps_yal(load_mcnc(name)).encode()).hexdigest()[:16]


# Pinned digests of the YAL serialization (module dims + net lists).
EXPECTED = {
    "apte": "05072725f00cd453",
    "xerox": "b823808849c4595a",
    "hp": "3b372d613429add2",
    "ami33": "b38583127b790e92",
    "ami49": "cd6d3bb3dd7e5486",
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_circuit_digest_pinned(name):
    assert digest(name) == EXPECTED[name], (
        f"synthetic circuit {name!r} changed; if intentional, update "
        "EXPECTED and regenerate EXPERIMENTS.md"
    )
