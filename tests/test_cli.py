"""CLI smoke tests (everything through main() with tiny workloads)."""

import os
from unittest import mock

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def smoke_profile():
    with mock.patch.dict(os.environ, {"REPRO_PROFILE": "smoke", "REPRO_SEEDS": "1"}):
        yield


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCircuits:
    def test_lists_all(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        for name in ("apte", "xerox", "hp", "ami33", "ami49"):
            assert name in out


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "c.yal"
        assert main(
            ["generate", str(target), "--modules", "6", "--nets", "9"]
        ) == 0
        assert target.exists()
        from repro.data import read_yal

        nl = read_yal(target)
        assert nl.n_modules == 6
        assert nl.n_nets == 9

    def test_clustered_flag(self, tmp_path):
        target = tmp_path / "c.yal"
        assert main(["generate", str(target), "--clustered"]) == 0
        assert target.exists()


class TestFloorplan:
    def test_on_generated_circuit(self, tmp_path, capsys):
        target = tmp_path / "c.yal"
        main(["generate", str(target), "--modules", "5", "--nets", "6"])
        assert main(["floorplan", str(target), "--render"]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert "+---" in out or "+-" in out  # ASCII border

    def test_svg_output(self, tmp_path):
        circuit = tmp_path / "c.yal"
        svg = tmp_path / "fp.svg"
        main(["generate", str(circuit), "--modules", "4", "--nets", "4"])
        assert main(["floorplan", str(circuit), "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")

    def test_missing_circuit_exits(self):
        with pytest.raises(SystemExit, match="neither"):
            main(["floorplan", "no_such_circuit"])


class TestEstimate:
    def test_irgrid_model(self, tmp_path, capsys):
        circuit = tmp_path / "c.yal"
        main(["generate", str(circuit), "--modules", "5", "--nets", "8"])
        assert main(["estimate", str(circuit), "--render"]) == 0
        out = capsys.readouterr().out
        assert "IR-grid model" in out
        assert "judging model" in out

    def test_fixed_model(self, tmp_path, capsys):
        circuit = tmp_path / "c.yal"
        main(["generate", str(circuit), "--modules", "5", "--nets", "8"])
        assert main(["estimate", str(circuit), "--model", "fixed"]) == 0
        assert "fixed-grid model" in capsys.readouterr().out


class TestFigure8:
    def test_prints_both_panels(self, capsys):
        assert main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8 (b)" in out
        assert "Figure 8 (d)" in out
        assert "n/a" in out  # the error grid


class TestPlacementRoundTripThroughCli:
    def test_save_then_estimate(self, tmp_path, capsys):
        circuit = tmp_path / "c.yal"
        place = tmp_path / "fp.place"
        main(["generate", str(circuit), "--modules", "5", "--nets", "8"])
        assert main(
            ["floorplan", str(circuit), "--save-placement", str(place)]
        ) == 0
        assert place.exists()
        assert main(
            ["estimate", str(circuit), "--placement", str(place)]
        ) == 0
        out = capsys.readouterr().out
        assert "IR-grid model" in out


class TestFloorplanWithCongestionTerm:
    def test_gamma_enables_congestion(self, tmp_path, capsys):
        circuit = tmp_path / "c.yal"
        main(["generate", str(circuit), "--modules", "4", "--nets", "6"])
        assert main(["floorplan", str(circuit), "--gamma", "1.0"]) == 0
        out = capsys.readouterr().out
        # The congestion figure appears and is nonzero.
        assert "congestion" in out
        import re

        match = re.search(r"congestion ([0-9.e+-]+)", out)
        assert match and float(match.group(1)) > 0.0


class TestRegistryListing:
    def test_list_drivers(self, capsys):
        assert main(["floorplan", "--list-drivers"]) == 0
        out = capsys.readouterr().out
        for name in ("multistart", "tempering", "portfolio"):
            assert name in out
        assert "replica-exchange" in out

    def test_list_reprs(self, capsys):
        assert main(["floorplan", "--list-reprs"]) == 0
        out = capsys.readouterr().out
        for name in ("polish", "sp", "btree"):
            assert name in out
        assert "Polish" in out  # descriptions, not just keys

    def test_list_backends(self, capsys):
        assert main(["floorplan", "--list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "python"):
            assert name in out

    def test_all_three_at_once(self, capsys):
        assert main(["floorplan", "--list-drivers", "--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "multistart" in out
        assert "numpy" in out

    def test_no_circuit_and_no_flags_errors(self):
        with pytest.raises(SystemExit, match="circuit is required"):
            main(["floorplan"])


class TestDriverCli:
    def _circuit(self, tmp_path):
        target = tmp_path / "c.yal"
        main(["generate", str(target), "--modules", "4", "--nets", "6"])
        return target

    def test_tempering_smoke(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        assert main(
            [
                "floorplan", str(circuit),
                "--driver", "tempering",
                "--restarts", "2", "--rounds", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[tempering/" in out
        assert "replica swaps:" in out

    def test_portfolio_smoke(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        assert main(
            [
                "floorplan", str(circuit),
                "--driver", "portfolio",
                "--restarts", "3", "--rounds", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[portfolio/" in out
        assert "arm bests:" in out

    def test_rounds_rejected_for_multistart(self, tmp_path):
        circuit = self._circuit(tmp_path)
        with pytest.raises(SystemExit, match="--rounds"):
            main(["floorplan", str(circuit), "--rounds", "3"])

    def test_driver_checkpoint_resume_roundtrip(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        ckpt = tmp_path / "drv.ckpt"
        assert main(
            [
                "floorplan", str(circuit),
                "--driver", "portfolio",
                "--restarts", "3", "--rounds", "1",
                "--checkpoint", str(ckpt),
            ]
        ) == 0
        assert ckpt.exists()
        capsys.readouterr()
        assert main(
            [
                "floorplan", str(circuit),
                "--driver", "portfolio",
                "--resume", str(ckpt), "--rounds", "2",
            ]
        ) == 0
        assert "[portfolio/" in capsys.readouterr().out


class TestServiceCommands:
    def _circuit(self, tmp_path):
        target = tmp_path / "c.yal"
        main(["generate", str(target), "--modules", "4", "--nets", "6"])
        return target

    def _server(self, tmp_path):
        from repro.service import FloorplanService, ServiceThread

        service = FloorplanService(tmp_path / "service-root", workers=1)
        return ServiceThread(service).start()

    def test_submit_waits_and_prints_cost(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        thread = self._server(tmp_path)
        try:
            assert main(
                [
                    "submit", str(circuit),
                    "--port", str(thread.port),
                    "--max-steps", "6",
                    "--moves-per-temperature", "8",
                ]
            ) == 0
        finally:
            thread.stop(drain=True)
        out = capsys.readouterr().out
        assert "job j000001: queued" in out
        assert "done: cost" in out and "chip" in out

    def test_submit_no_wait_and_cache_hit(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        thread = self._server(tmp_path)
        try:
            argv = [
                "submit", str(circuit),
                "--port", str(thread.port),
                "--max-steps", "6",
                "--moves-per-temperature", "8",
            ]
            assert main(argv) == 0
            capsys.readouterr()
            # Identical content again: served from the result store.
            assert main(argv + ["--no-wait"]) == 0
            assert "(cache hit)" in capsys.readouterr().out
        finally:
            thread.stop(drain=True)

    def test_submit_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        assert main(
            ["submit", str(circuit), "--port", "1", "--no-wait"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_peek_engine_checkpoint(self, tmp_path, capsys):
        circuit = self._circuit(tmp_path)
        ckpt = tmp_path / "run.ckpt"
        assert main(
            ["floorplan", str(circuit), "--checkpoint", str(ckpt)]
        ) == 0
        capsys.readouterr()
        assert main(["peek", str(ckpt)]) == 0
        assert "engine checkpoint v1" in capsys.readouterr().out
        assert main(["peek", str(ckpt), "--json"]) == 0
        assert '"kind": "engine"' in capsys.readouterr().out

    def test_peek_garbage_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"nope")
        assert main(["peek", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
