"""Tests for the sequence-pair annealer."""

import pytest

from repro.anneal import (
    FloorplanObjective,
    GeometricSchedule,
    SequencePairAnnealer,
)
from repro.congestion import IrregularGridModel
from repro.netlist import random_circuit

FAST = GeometricSchedule(cooling_rate=0.6, freeze_ratio=0.05, max_steps=8)


def annealer(netlist, **kwargs):
    kwargs.setdefault("schedule", FAST)
    kwargs.setdefault("moves_per_temperature", 20)
    return SequencePairAnnealer(netlist, **kwargs)


class TestBasicRun:
    def test_produces_valid_floorplan(self):
        nl = random_circuit(8, 16, seed=1)
        result = annealer(nl, seed=1).run()
        result.floorplan.validate()
        assert set(result.floorplan.module_names) == set(nl.module_names)
        assert result.n_moves > 0
        assert 0.0 <= result.acceptance_ratio <= 1.0

    def test_deterministic_per_seed(self):
        nl = random_circuit(6, 12, seed=2)
        a = annealer(nl, seed=9).run()
        b = annealer(nl, seed=9).run()
        assert a.pair == b.pair
        assert a.cost == pytest.approx(b.cost)

    def test_improves_over_initial(self):
        nl = random_circuit(10, 20, seed=3)
        result = annealer(nl, seed=3).run()
        assert result.cost <= result.snapshots[0].current_cost + 1e-9

    def test_snapshots_per_temperature(self):
        nl = random_circuit(5, 8, seed=0)
        seen = []
        result = annealer(nl, seed=0).run(on_snapshot=seen.append)
        assert len(result.snapshots) == FAST.n_steps(1.0)
        assert len(seen) == len(result.snapshots)

    def test_congestion_objective(self):
        nl = random_circuit(6, 12, seed=5)
        obj = FloorplanObjective(
            nl,
            alpha=1,
            beta=1,
            gamma=1,
            congestion_model=IrregularGridModel(50.0),
        )
        result = annealer(nl, objective=obj, seed=5).run()
        assert result.breakdown.congestion >= 0.0
        result.floorplan.validate()

    def test_invalid_moves_per_temperature(self):
        nl = random_circuit(4, 4, seed=0)
        with pytest.raises(ValueError):
            SequencePairAnnealer(nl, moves_per_temperature=0)


class TestNonSlicingReach:
    def test_can_beat_or_match_slicing_on_awkward_sizes(self):
        """Sequence pairs reach non-slicing packings; on a mix of
        skewed modules the packer must stay within sane whitespace."""
        nl = random_circuit(9, 0, seed=11, max_aspect=4.0)
        result = annealer(nl, seed=11, moves_per_temperature=60).run()
        assert result.floorplan.whitespace_fraction < 0.5
