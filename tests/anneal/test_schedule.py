"""Tests for cooling schedules."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.anneal import GeometricSchedule, initial_temperature


class TestInitialTemperature:
    def test_accepts_average_uphill(self):
        deltas = [1.0, 2.0, 3.0, -5.0]  # avg uphill = 2.0
        t0 = initial_temperature(deltas, initial_acceptance=0.85)
        assert math.exp(-2.0 / t0) == pytest.approx(0.85)

    def test_no_uphill_fallback(self):
        assert initial_temperature([-1.0, -2.0]) == 1.0
        assert initial_temperature([]) == 1.0

    def test_invalid_acceptance(self):
        with pytest.raises(ValueError):
            initial_temperature([1.0], initial_acceptance=0.0)
        with pytest.raises(ValueError):
            initial_temperature([1.0], initial_acceptance=1.0)

    @given(
        st.lists(st.floats(0.001, 100), min_size=1, max_size=20),
        st.floats(0.5, 0.99),
    )
    def test_hotter_for_higher_acceptance(self, uphill, p):
        t_low = initial_temperature(uphill, initial_acceptance=p * 0.9)
        t_high = initial_temperature(uphill, initial_acceptance=p)
        assert t_high >= t_low


class TestGeometricSchedule:
    def test_cooling_sequence(self):
        sched = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.05, max_steps=99)
        temps = list(sched.temperatures(100.0))
        assert temps[0] == 100.0
        assert temps[1] == 50.0
        assert all(b == pytest.approx(a * 0.5) for a, b in zip(temps, temps[1:]))
        assert temps[-1] >= 100.0 * 0.05

    def test_max_steps_caps(self):
        sched = GeometricSchedule(cooling_rate=0.99, freeze_ratio=1e-9, max_steps=7)
        assert sched.n_steps(10.0) == 7

    def test_freeze_ratio_scales_with_initial(self):
        sched = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1, max_steps=50)
        # The step count is invariant to the initial temperature.
        assert sched.n_steps(1.0) == sched.n_steps(1e6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GeometricSchedule(cooling_rate=1.0)
        with pytest.raises(ValueError):
            GeometricSchedule(cooling_rate=0.0)
        with pytest.raises(ValueError):
            GeometricSchedule(freeze_ratio=0.0)
        with pytest.raises(ValueError):
            GeometricSchedule(max_steps=0)

    def test_invalid_initial(self):
        sched = GeometricSchedule()
        with pytest.raises(ValueError):
            list(sched.temperatures(0.0))

    @given(st.floats(0.5, 0.95), st.floats(1e-6, 0.5))
    def test_all_temperatures_positive_decreasing(self, rate, freeze):
        sched = GeometricSchedule(cooling_rate=rate, freeze_ratio=freeze, max_steps=60)
        temps = list(sched.temperatures(42.0))
        assert all(t > 0 for t in temps)
        assert temps == sorted(temps, reverse=True)
