"""Tests for the simulated-annealing floorplanner."""

import pytest

from repro.anneal import (
    FloorplanAnnealer,
    FloorplanObjective,
    GeometricSchedule,
)
from repro.congestion import IrregularGridModel
from repro.netlist import random_circuit

FAST = GeometricSchedule(cooling_rate=0.6, freeze_ratio=0.05, max_steps=8)


def annealer(netlist, **kwargs):
    kwargs.setdefault("schedule", FAST)
    kwargs.setdefault("moves_per_temperature", 20)
    return FloorplanAnnealer(netlist, **kwargs)


class TestBasicRun:
    def test_produces_valid_floorplan(self):
        nl = random_circuit(8, 16, seed=1)
        result = annealer(nl, seed=1).run()
        result.floorplan.validate()
        assert set(result.floorplan.module_names) == set(nl.module_names)
        assert result.cost == result.breakdown.cost
        assert result.n_moves > 0
        assert 0.0 <= result.acceptance_ratio <= 1.0
        assert result.runtime_seconds > 0

    def test_deterministic_per_seed(self):
        nl = random_circuit(6, 12, seed=2)
        a = annealer(nl, seed=5).run()
        b = annealer(nl, seed=5).run()
        assert a.expression == b.expression
        assert a.cost == pytest.approx(b.cost)

    def test_seeds_differ(self):
        nl = random_circuit(6, 12, seed=2)
        a = annealer(nl, seed=1).run()
        b = annealer(nl, seed=2).run()
        assert a.expression != b.expression or a.cost != b.cost

    def test_improves_over_initial(self):
        nl = random_circuit(10, 20, seed=3)
        result = annealer(nl, seed=3).run()
        first = result.snapshots[0]
        assert result.cost <= first.current_cost + 1e-9

    def test_best_is_min_over_snapshots(self):
        nl = random_circuit(8, 10, seed=4)
        result = annealer(nl, seed=4).run()
        assert result.cost <= min(s.best_cost for s in result.snapshots) + 1e-9


class TestSnapshots:
    def test_one_snapshot_per_temperature(self):
        nl = random_circuit(5, 8, seed=0)
        result = annealer(nl, seed=0).run()
        assert len(result.snapshots) == FAST.n_steps(1.0)
        temps = [s.temperature for s in result.snapshots]
        assert temps == sorted(temps, reverse=True)

    def test_snapshot_callback_invoked(self):
        nl = random_circuit(5, 8, seed=0)
        seen = []
        annealer(nl, seed=0).run(on_snapshot=seen.append)
        assert len(seen) == FAST.n_steps(1.0)
        assert seen[0].step == 0

    def test_snapshot_expressions_valid(self):
        from repro.floorplan import evaluate_polish

        nl = random_circuit(6, 9, seed=7)
        result = annealer(nl, seed=7).run()
        modules = {m.name: m for m in nl.modules}
        for snap in result.snapshots:
            evaluate_polish(snap.expression, modules).validate()


class TestObjectives:
    def test_congestion_objective_runs(self):
        nl = random_circuit(6, 12, seed=5)
        model = IrregularGridModel(grid_size=50.0)
        obj = FloorplanObjective(
            nl, alpha=1, beta=1, gamma=1, congestion_model=model
        )
        result = annealer(nl, objective=obj, seed=5).run()
        assert result.breakdown.congestion >= 0.0

    def test_area_only_objective_compacts(self):
        nl = random_circuit(8, 0, seed=6)
        obj = FloorplanObjective(nl, alpha=1, beta=0)
        result = annealer(nl, objective=obj, seed=6).run()
        # A short anneal must at least beat 60% whitespace.
        assert result.floorplan.whitespace_fraction < 0.6

    def test_invalid_moves_per_temperature(self):
        nl = random_circuit(4, 4, seed=0)
        with pytest.raises(ValueError):
            FloorplanAnnealer(nl, moves_per_temperature=0)
