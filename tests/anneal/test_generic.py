"""Direct tests of the representation-agnostic annealing loop."""

import random

import pytest

from repro.anneal import FloorplanObjective, GeometricSchedule
from repro.anneal.generic import anneal
from repro.floorplan import Floorplan
from repro.geometry import Rect
from repro.netlist import Module, Net, Netlist

FAST = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1, max_steps=5)


def toy_problem():
    """A 1-D toy representation: a permutation of modules in a row.

    Lets the loop be tested with trivial, fully-controlled state."""
    modules = [Module(f"m{i}", 10 + 2 * i, 10) for i in range(5)]
    netlist = Netlist(
        "toy",
        modules,
        [Net("n0", ("m0", "m4")), Net("n1", ("m1", "m3"))],
    )

    def realize(order):
        x = 0.0
        placements = {}
        for name in order:
            m = netlist.module(name)
            placements[name] = Rect.from_origin(x, 0.0, m.width, m.height)
            x += m.width
        return Floorplan(placements)

    def initial(rng):
        order = [m.name for m in modules]
        rng.shuffle(order)
        return tuple(order)

    def neighbor(order, rng):
        i, j = rng.sample(range(len(order)), 2)
        out = list(order)
        out[i], out[j] = out[j], out[i]
        return tuple(out)

    return netlist, initial, neighbor, realize


class TestGenericLoop:
    def test_runs_and_reports(self):
        netlist, initial, neighbor, realize = toy_problem()
        objective = FloorplanObjective(netlist, alpha=0.1, beta=1.0, pin_grid_size=5.0)
        result = anneal(
            objective,
            initial,
            neighbor,
            realize,
            seed=1,
            moves_per_temperature=30,
            schedule=FAST,
        )
        result.floorplan.validate()
        assert result.n_moves > 0
        assert len(result.snapshots) == FAST.n_steps(1.0)
        assert result.cost <= result.snapshots[0].current_cost + 1e-9

    def test_wirelength_objective_brings_connected_modules_together(self):
        netlist, initial, neighbor, realize = toy_problem()
        # Pure wirelength: m0 and m4 (connected) should end adjacent-ish.
        objective = FloorplanObjective(netlist, alpha=0.0, beta=1.0, pin_grid_size=5.0)
        result = anneal(
            objective,
            initial,
            neighbor,
            realize,
            seed=0,
            moves_per_temperature=60,
            schedule=GeometricSchedule(
                cooling_rate=0.7, freeze_ratio=0.01, max_steps=15
            ),
        )
        order = list(result.state)
        d_04 = abs(order.index("m0") - order.index("m4"))
        assert d_04 <= 2  # annealing pulled the connected pair together

    def test_deterministic(self):
        netlist, initial, neighbor, realize = toy_problem()
        objective = FloorplanObjective(netlist, alpha=1.0, beta=1.0, pin_grid_size=5.0)
        kwargs = dict(
            seed=7, moves_per_temperature=20, schedule=FAST, calibrate=True
        )
        a = anneal(objective, initial, neighbor, realize, **kwargs)
        b = anneal(objective, initial, neighbor, realize, **kwargs)
        assert a.state == b.state
        assert a.cost == pytest.approx(b.cost)

    def test_snapshot_callback(self):
        netlist, initial, neighbor, realize = toy_problem()
        objective = FloorplanObjective(netlist, alpha=1.0, beta=0.0)
        seen = []
        anneal(
            objective,
            initial,
            neighbor,
            realize,
            seed=0,
            moves_per_temperature=5,
            schedule=FAST,
            on_snapshot=seen.append,
        )
        assert len(seen) == FAST.n_steps(1.0)
        assert [s.step for s in seen] == list(range(len(seen)))

    def test_invalid_moves(self):
        netlist, initial, neighbor, realize = toy_problem()
        objective = FloorplanObjective(netlist, alpha=1.0, beta=0.0)
        with pytest.raises(ValueError):
            anneal(
                objective,
                initial,
                neighbor,
                realize,
                moves_per_temperature=0,
            )
