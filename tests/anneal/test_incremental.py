"""Tests for the incremental (dirty-net delta) objective evaluation.

The delta path must agree with the from-scratch pipeline to float dust
on arbitrary move sequences -- these tests drive both evaluators over
seeded random walks and assert agreement, exercise ``strict_incremental``
as a tripwire (clean runs pass, corrupted state raises), and check the
perf counters that feed the annealing report.
"""

import math
import random

import pytest

from repro.anneal import FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.congestion import IrregularGridModel
from repro.engine import AnnealEngine
from repro.floorplan import initial_expression
from repro.netlist import random_circuit
from repro.perf import PerfRecorder


def _walk(netlist, n_steps, seed):
    rng = random.Random(seed)
    names = [m.name for m in netlist.modules]
    expr = initial_expression(names, rng)
    out = []
    for _ in range(n_steps):
        expr = expr.random_neighbor(rng)
        out.append(expr)
    return out


def _pair(netlist, grid, gamma=1.0, strict=False):
    """(incremental, full) objectives over the same circuit."""
    fast = FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=gamma,
        congestion_model=IrregularGridModel(grid) if gamma > 0 else None,
        incremental=True,
        strict_incremental=strict,
    )
    full = FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=gamma,
        congestion_model=(
            IrregularGridModel(grid, use_cache=False) if gamma > 0 else None
        ),
        incremental=False,
    )
    return fast, full


class TestDeltaAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_full_path_over_walk(self, seed):
        netlist = random_circuit(14, 40, seed=seed)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, full = _pair(netlist, grid)
        for expr in _walk(netlist, 80, seed):
            a = fast.evaluate_expression(expr)
            b = full.evaluate_expression(expr)
            assert math.isclose(
                a.wirelength, b.wirelength, rel_tol=1e-12, abs_tol=1e-12
            )
            assert math.isclose(
                a.congestion, b.congestion, rel_tol=1e-12, abs_tol=1e-12
            )
            assert math.isclose(a.cost, b.cost, rel_tol=1e-12, abs_tol=1e-12)

    def test_wirelength_only_objective(self):
        netlist = random_circuit(10, 25, seed=4)
        fast, full = _pair(netlist, 30.0, gamma=0.0)
        for expr in _walk(netlist, 50, 4):
            a = fast.evaluate_expression(expr)
            b = full.evaluate_expression(expr)
            assert math.isclose(
                a.wirelength, b.wirelength, rel_tol=1e-12, abs_tol=1e-12
            )
            assert a.congestion == b.congestion == 0.0

    def test_repeated_expression_is_stable(self):
        netlist = random_circuit(8, 20, seed=5)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid)
        expr = _walk(netlist, 5, 5)[-1]
        first = fast.evaluate_expression(expr)
        second = fast.evaluate_expression(expr)
        assert first == second

    def test_invalidate_forces_full_eval(self):
        netlist = random_circuit(8, 20, seed=6)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid)
        perf = PerfRecorder()
        fast.perf = perf
        exprs = _walk(netlist, 3, 6)
        fast.evaluate_expression(exprs[0])
        fast.invalidate()
        fast.evaluate_expression(exprs[1])
        assert perf.counters["eval_full"] == 2


class TestStrictMode:
    def test_clean_run_passes(self):
        netlist = random_circuit(10, 30, seed=7)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid, strict=True)
        for expr in _walk(netlist, 30, 7):
            fast.evaluate_expression(expr)

    def test_corrupted_wirelength_raises(self):
        netlist = random_circuit(10, 30, seed=8)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid, strict=True)
        expr = _walk(netlist, 3, 8)[-1]
        fast.evaluate_expression(expr)
        # Corrupt the memoized total: re-evaluating the same floorplan
        # reuses it, and the strict re-check must catch the drift.
        fast._state.wirelength += 1000.0
        with pytest.raises(AssertionError):
            fast.evaluate_expression(expr)

    def test_corrupted_congestion_raises(self):
        netlist = random_circuit(10, 30, seed=8)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid, strict=True)
        expr = _walk(netlist, 3, 8)[-1]
        fast.evaluate_expression(expr)
        fast._state.congestion += 1000.0
        with pytest.raises(AssertionError):
            fast.evaluate_expression(expr)

    def test_full_anneal_with_strict_completes(self):
        netlist = random_circuit(8, 20, seed=9)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        objective = FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(grid),
            incremental=True,
            strict_incremental=True,
        )
        engine = AnnealEngine(
            netlist,
            objective=objective,
            seed=9,
            moves_per_temperature=8,
            schedule=GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1),
        )
        result = engine.run()
        assert result.n_moves > 0


class TestPerfCounters:
    def test_counters_fire_over_walk(self):
        netlist = random_circuit(12, 30, seed=10)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        fast, _ = _pair(netlist, grid)
        perf = PerfRecorder()
        fast.perf = perf
        exprs = _walk(netlist, 40, 10)
        for expr in exprs:
            fast.evaluate_expression(expr)
        # Re-evaluating the last expression exercises the unchanged path.
        fast.evaluate_expression(exprs[-1])
        assert perf.counters["eval_full"] >= 1
        assert perf.counters["eval_delta"] >= 1
        assert perf.counters["eval_unchanged"] >= 1
        assert perf.counters["congestion_skipped"] >= 1
        assert perf.counters["nets_redone"] > 0
        assert "pin_assignment" in perf.timers
        assert "congestion" in perf.timers

    def test_engine_reports_incremental_counters(self):
        netlist = random_circuit(8, 20, seed=11)
        grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
        objective = FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(grid),
            incremental=True,
        )
        engine = AnnealEngine(
            netlist,
            objective=objective,
            seed=11,
            moves_per_temperature=8,
            schedule=GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1),
        )
        result = engine.run()
        assert result.perf.counters.get("eval_delta", 0) > 0
        assert result.perf.counters.get("evaluations", 0) > 0
        assert result.moves_per_second > 0
