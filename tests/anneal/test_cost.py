"""Tests for the multi-objective floorplan cost."""

import pytest

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel
from repro.floorplan import PolishExpression
from repro.netlist import Module, Net, Netlist


def circuit():
    modules = [
        Module("a", 100, 200),
        Module("b", 150, 150),
        Module("c", 120, 80),
    ]
    nets = [Net("n0", ("a", "b")), Net("n1", ("b", "c")), Net("n2", ("a", "c"))]
    return Netlist("abc", modules, nets)


EXPR = PolishExpression(["a", "b", "+", "c", "*"])


class TestValidation:
    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            FloorplanObjective(circuit(), alpha=0, beta=0, gamma=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FloorplanObjective(circuit(), alpha=-1)

    def test_gamma_without_model_rejected(self):
        with pytest.raises(ValueError, match="congestion model"):
            FloorplanObjective(circuit(), gamma=1.0)

    def test_bad_pin_grid(self):
        with pytest.raises(ValueError):
            FloorplanObjective(circuit(), pin_grid_size=0.0)


class TestEvaluation:
    def test_area_only(self):
        obj = FloorplanObjective(circuit(), alpha=1, beta=0)
        b = obj.evaluate_expression(EXPR)
        assert b.area > 0
        assert b.wirelength == 0.0
        assert b.congestion == 0.0
        assert b.cost == pytest.approx(b.area)  # norm is 1 before calibrate

    def test_wirelength_computed_when_beta_positive(self):
        obj = FloorplanObjective(circuit(), alpha=1, beta=1, pin_grid_size=10.0)
        b = obj.evaluate_expression(EXPR)
        assert b.wirelength > 0

    def test_congestion_term(self):
        model = IrregularGridModel(20.0)
        obj = FloorplanObjective(
            circuit(), alpha=1, beta=1, gamma=1, congestion_model=model
        )
        b = obj.evaluate_expression(EXPR)
        assert b.congestion > 0

    def test_pin_grid_defaults_to_model_grid(self):
        model = IrregularGridModel(25.0)
        obj = FloorplanObjective(circuit(), gamma=1, congestion_model=model)
        assert obj.pin_grid_size == 25.0

    def test_gamma_zero_skips_congestion(self):
        obj = FloorplanObjective(circuit(), alpha=1, beta=1, pin_grid_size=10.0)
        assert obj.evaluate_expression(EXPR).congestion == 0.0


class TestCalibration:
    def test_calibration_normalizes_terms(self):
        obj = FloorplanObjective(circuit(), alpha=1, beta=1, pin_grid_size=10.0)
        obj.calibrate(seed=0, samples=5)
        b = obj.evaluate_expression(EXPR)
        # After normalization each term contributes O(1).
        assert 0.01 < b.cost < 10.0

    def test_calibration_deterministic(self):
        a = FloorplanObjective(circuit(), alpha=1, beta=1, pin_grid_size=10.0)
        b = FloorplanObjective(circuit(), alpha=1, beta=1, pin_grid_size=10.0)
        a.calibrate(seed=3)
        b.calibrate(seed=3)
        assert a.evaluate_expression(EXPR).cost == pytest.approx(
            b.evaluate_expression(EXPR).cost
        )

    def test_invalid_samples(self):
        obj = FloorplanObjective(circuit(), alpha=1, beta=0)
        with pytest.raises(ValueError):
            obj.calibrate(samples=0)

    def test_cost_scales_with_weights(self):
        light = FloorplanObjective(circuit(), alpha=1, beta=0)
        heavy = FloorplanObjective(circuit(), alpha=2, beta=0)
        assert heavy.evaluate_expression(EXPR).cost == pytest.approx(
            2 * light.evaluate_expression(EXPR).cost
        )
