"""Tests for Simpson integration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mathutils import adaptive_simpson, simpson


class TestSimpson:
    def test_exact_for_cubics(self):
        # Simpson's rule integrates polynomials up to degree 3 exactly.
        f = lambda x: 2 * x**3 - x**2 + 4 * x - 7
        exact = lambda a, b: (
            (b**4 / 2 - b**3 / 3 + 2 * b**2 - 7 * b)
            - (a**4 / 2 - a**3 / 3 + 2 * a**2 - 7 * a)
        )
        assert simpson(f, -1.0, 3.0, panels=2) == pytest.approx(exact(-1, 3))
        assert simpson(f, 0.0, 10.0, panels=8) == pytest.approx(exact(0, 10))

    def test_zero_width_interval(self):
        assert simpson(math.exp, 2.0, 2.0) == 0.0

    def test_reversed_bounds_negate(self):
        forward = simpson(math.sin, 0.0, 2.0)
        backward = simpson(math.sin, 2.0, 0.0)
        assert backward == pytest.approx(-forward)

    def test_odd_panels_rejected(self):
        with pytest.raises(ValueError):
            simpson(math.exp, 0.0, 1.0, panels=3)

    def test_nonpositive_panels_rejected(self):
        with pytest.raises(ValueError):
            simpson(math.exp, 0.0, 1.0, panels=0)
        with pytest.raises(ValueError):
            simpson(math.exp, 0.0, 1.0, panels=-2)

    def test_gaussian_density_mass(self):
        # The congestion integrand is a normal density; 8 panels over
        # +-1 sigma lands within ~2e-5 of the true mass.
        f = lambda x: math.exp(-0.5 * x * x) / math.sqrt(2 * math.pi)
        value = simpson(f, -1.0, 1.0, panels=8)
        assert value == pytest.approx(0.6826894921370859, abs=1e-4)

    @given(
        st.floats(-5, 5),
        st.floats(0.1, 5),
        st.integers(1, 10),
    )
    def test_converges_to_adaptive(self, a, width, half_panels):
        f = lambda x: math.exp(-0.3 * x) * math.cos(x)
        b = a + width
        coarse = simpson(f, a, b, panels=2 * half_panels)
        truth = adaptive_simpson(f, a, b, tol=1e-12)
        # Composite Simpson error scales as (width/panels)^4.
        h = width / (2 * half_panels)
        assert abs(coarse - truth) < 1.0 * h**4 + 1e-12


class TestAdaptiveSimpson:
    def test_known_integral(self):
        assert adaptive_simpson(math.sin, 0.0, math.pi) == pytest.approx(
            2.0, abs=1e-9
        )

    def test_zero_width(self):
        assert adaptive_simpson(math.exp, 1.0, 1.0) == 0.0

    def test_sharp_peak(self):
        # A narrow Gaussian: adaptive subdivision must find the peak.
        f = lambda x: math.exp(-((x - 0.5) ** 2) / (2 * 0.01**2))
        value = adaptive_simpson(f, 0.0, 1.0, tol=1e-12)
        expected = 0.01 * math.sqrt(2 * math.pi)
        assert value == pytest.approx(expected, rel=1e-6)
