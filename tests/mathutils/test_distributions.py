"""Tests for the normal-distribution helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mathutils import normal_cdf, normal_interval_mass, normal_pdf


class TestNormalPdf:
    def test_standard_peak(self):
        assert normal_pdf(0.0) == pytest.approx(1 / math.sqrt(2 * math.pi))

    def test_symmetry(self):
        assert normal_pdf(1.3, 0.0, 2.0) == pytest.approx(
            normal_pdf(-1.3, 0.0, 2.0)
        )

    def test_scaling(self):
        # Doubling sigma halves the peak.
        assert normal_pdf(0.0, 0.0, 2.0) == pytest.approx(
            normal_pdf(0.0, 0.0, 1.0) / 2.0
        )

    def test_far_tail_underflows_to_zero(self):
        assert normal_pdf(100.0) == 0.0

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            normal_pdf(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            normal_pdf(0.0, 0.0, -1.0)

    @given(st.floats(-10, 10), st.floats(-5, 5), st.floats(0.1, 10))
    def test_non_negative(self, x, mu, sigma):
        assert normal_pdf(x, mu, sigma) >= 0.0


class TestNormalCdf:
    def test_median(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(3.0, 3.0, 2.0) == pytest.approx(0.5)

    def test_one_sigma(self):
        assert normal_cdf(1.0) == pytest.approx(0.8413447460685429)

    @given(st.floats(-8, 8), st.floats(-8, 8))
    def test_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert normal_cdf(lo) <= normal_cdf(hi) + 1e-15

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            normal_cdf(0.0, 0.0, 0.0)


class TestIntervalMass:
    def test_matches_cdf_difference(self):
        expected = normal_cdf(1.5, 0.2, 1.1) - normal_cdf(-0.4, 0.2, 1.1)
        assert normal_interval_mass(-0.4, 1.5, 0.2, 1.1) == pytest.approx(
            expected
        )

    def test_reversed_bounds(self):
        assert normal_interval_mass(2.0, -2.0) == pytest.approx(
            normal_interval_mass(-2.0, 2.0)
        )

    def test_whole_line(self):
        assert normal_interval_mass(-40.0, 40.0) == pytest.approx(1.0)
