"""Unit and property tests for binomial primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mathutils import (
    binomial,
    binomial_ratio,
    hypergeometric_pmf,
    log_binomial,
    pascal_row,
)


class TestBinomial:
    def test_small_values(self):
        assert binomial(0, 0) == 1
        assert binomial(5, 0) == 1
        assert binomial(5, 5) == 1
        assert binomial(5, 2) == 10
        assert binomial(10, 5) == 252  # the paper's Figure 6 denominator

    def test_out_of_range_returns_zero(self):
        assert binomial(5, -1) == 0
        assert binomial(5, 6) == 0
        assert binomial(-1, 0) == 0

    def test_symmetry(self):
        for n in range(12):
            for k in range(n + 1):
                assert binomial(n, k) == binomial(n, n - k)

    @given(st.integers(0, 60), st.integers(0, 60))
    def test_pascal_recurrence(self, n, k):
        assert binomial(n + 1, k + 1) == binomial(n, k) + binomial(n, k + 1)

    @given(st.integers(0, 40))
    def test_row_sums_to_power_of_two(self, n):
        assert sum(binomial(n, k) for k in range(n + 1)) == 2**n


class TestLogBinomial:
    @given(st.integers(0, 80), st.integers(0, 80))
    def test_matches_exact(self, n, k):
        if k > n:
            assert log_binomial(n, k) == float("-inf")
        else:
            assert log_binomial(n, k) == pytest.approx(
                math.log(binomial(n, k)), abs=1e-9
            )

    def test_out_of_range_is_minus_inf(self):
        assert log_binomial(3, 5) == float("-inf")
        assert log_binomial(-2, 0) == float("-inf")
        assert log_binomial(4, -1) == float("-inf")

    def test_huge_arguments_stay_finite(self):
        value = log_binomial(2000, 1000)
        assert math.isfinite(value)
        assert value > 1000  # C(2000,1000) ~ 10^600


class TestBinomialRatio:
    def test_simple_ratio(self):
        # C(4,2) / C(6,3) = 6/20
        assert binomial_ratio([(4, 2)], [(6, 3)]) == pytest.approx(0.3)

    def test_zero_numerator_short_circuits(self):
        assert binomial_ratio([(3, 5), (6, 3)], [(6, 3)]) == 0.0

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            binomial_ratio([(4, 2)], [(3, 7)])

    def test_product_of_terms(self):
        # (C(4,2)*C(2,1)) / C(6,3) = 12/20
        value = binomial_ratio([(4, 2), (2, 1)], [(6, 3)])
        assert value == pytest.approx(0.6)

    @given(
        st.integers(1, 200),
        st.integers(1, 200),
    )
    def test_large_ratio_in_unit_interval(self, a, b):
        # C(a+b-1, b) / C(a+b, b) = a/(a+b) -- always within (0, 1).
        value = binomial_ratio([(a + b - 1, b)], [(a + b, b)])
        assert value == pytest.approx(a / (a + b), rel=1e-9)


class TestPascalRow:
    def test_row_five(self):
        assert pascal_row(5) == [1, 5, 10, 10, 5, 1]

    def test_row_zero(self):
        assert pascal_row(0) == [1]

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            pascal_row(-1)

    @given(st.integers(0, 150))
    def test_matches_math_comb(self, n):
        assert pascal_row(n) == [math.comb(n, k) for k in range(n + 1)]


class TestHypergeometricPmf:
    def test_reference_value(self):
        # Drawing 2 from an urn of 5 (3 marked): P(X=1) = C(3,1)C(2,1)/C(5,2)
        assert hypergeometric_pmf(1, 2, 5, 3) == pytest.approx(0.6)

    @given(st.integers(1, 30), st.integers(1, 30))
    def test_pmf_sums_to_one(self, r, extra):
        big_r = r + extra
        q = min(r, extra)
        total = sum(
            hypergeometric_pmf(x, r, big_r, q) for x in range(0, q + 1)
        )
        assert total == pytest.approx(1.0, rel=1e-9)
