"""JobQueue semantics: WAL-first mutations, scheduling, recovery.

The crash model throughout: "restart" means building a second JobQueue
on the same directory -- exactly what a killed server's replacement
does.  Nothing in-memory survives; everything asserted here is proven
out of the journal + snapshot alone.
"""

import pytest

from repro.errors import JobNotFound, QuotaExceeded, ServiceError
from repro.service import JobQueue, JobSpec
from repro.service.journal import replay_journal
from repro.testing.faults import InjectedFault, journal_write_crash


def make_spec(fast_spec, **overrides):
    return JobSpec.from_json({**fast_spec, **overrides})


def test_submit_claim_complete_lifecycle(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    job, created = queue.submit(make_spec(fast_spec))
    assert created and job.state == "queued" and job.job_id == "j000001"
    (claimed,) = queue.claim(4)
    assert claimed.job_id == job.job_id
    assert queue.get(job.job_id).state == "running"
    queue.complete(job.job_id, "abc123")
    final = queue.get(job.job_id)
    assert final.state == "done" and final.result_key == "abc123"


def test_claim_orders_by_priority_then_fifo(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    low1, _ = queue.submit(make_spec(fast_spec, seed=1, priority=0))
    high, _ = queue.submit(make_spec(fast_spec, seed=2, priority=5))
    low2, _ = queue.submit(make_spec(fast_spec, seed=3, priority=0))
    order = [j.job_id for j in queue.claim(3)]
    assert order == [high.job_id, low1.job_id, low2.job_id]


def test_tenant_quota_bounds_active_jobs(tmp_path, fast_spec):
    queue = JobQueue(tmp_path, tenant_quota=2)
    queue.submit(make_spec(fast_spec, seed=1, tenant="acme"))
    queue.submit(make_spec(fast_spec, seed=2, tenant="acme"))
    with pytest.raises(QuotaExceeded, match="acme"):
        queue.submit(make_spec(fast_spec, seed=3, tenant="acme"))
    # Other tenants are unaffected; finished jobs free the quota.
    queue.submit(make_spec(fast_spec, seed=3, tenant="other"))
    queue.claim(1)
    done = next(j for j in queue.list_jobs("acme"))
    queue.complete(done.job_id, "k")
    queue.submit(make_spec(fast_spec, seed=4, tenant="acme"))


def test_idempotency_key_returns_original_job(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    first, created = queue.submit(make_spec(fast_spec, idempotency_key="k1"))
    again, created2 = queue.submit(make_spec(fast_spec, idempotency_key="k1"))
    assert created and not created2
    assert again.job_id == first.job_id
    assert len(queue.jobs) == 1


def test_illegal_transition_refused_and_not_journaled(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec(fast_spec))
    with pytest.raises(ServiceError, match="cannot go"):
        queue.fail(job.job_id, "nope")  # queued jobs cannot fail
    with pytest.raises(JobNotFound):
        queue.get("j999999")
    # The refused transition left no journal record.
    records, _ = replay_journal(queue.journal_path)
    assert [r.op for r in records] == ["submit"]


def test_restart_replays_journal_and_requeues_running(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    a, _ = queue.submit(make_spec(fast_spec, seed=1))
    b, _ = queue.submit(make_spec(fast_spec, seed=2, priority=3))
    queue.claim(1)  # b (higher priority) goes running
    queue.complete(b.job_id, "key-b")
    queue.claim(1)  # now a runs
    del queue

    # The server dies here; its replacement replays the same directory.
    revived = JobQueue(tmp_path)
    assert revived.get(b.job_id).state == "done"
    assert revived.get(b.job_id).result_key == "key-b"
    # a was mid-run: recovered to queued, so it runs again (and will
    # resume its checkpoint rather than restart).
    assert revived.get(a.job_id).state == "queued"
    assert revived.recovered_jobs == [a.job_id]
    # Job-id allocation continues, never reuses.
    c, _ = revived.submit(make_spec(fast_spec, seed=9))
    assert c.job_id == "j000003"


def test_restart_after_compaction(tmp_path, fast_spec):
    queue = JobQueue(tmp_path, compact_every=3)  # compacts mid-test
    ids = [queue.submit(make_spec(fast_spec, seed=s))[0].job_id for s in range(5)]
    revived = JobQueue(tmp_path)
    assert [j.job_id for j in revived.list_jobs()] == ids
    assert all(revived.get(i).state == "queued" for i in ids)


def test_journal_crash_leaves_memory_and_disk_consistent(tmp_path, fast_spec):
    """The injected torn append must be a perfect no-op end to end."""
    queue = JobQueue(tmp_path)
    queue.submit(make_spec(fast_spec, seed=1, idempotency_key="ka"))
    with journal_write_crash(at_append=1, partial_bytes=9) as state:
        with pytest.raises(InjectedFault):
            queue.submit(make_spec(fast_spec, seed=2, idempotency_key="kb"))
    assert state["fired"]
    # In memory: the failed submit never happened.
    assert len(queue.jobs) == 1
    # On disk: replay discards the torn tail and agrees.
    revived = JobQueue(tmp_path)
    assert len(revived.jobs) == 1
    assert revived.replay_discarded == 1
    # The client's retry (same idempotency key) now simply enqueues.
    job, created = revived.submit(
        make_spec(fast_spec, seed=2, idempotency_key="kb")
    )
    assert created and job.state == "queued"


def test_torn_tail_never_swallows_later_committed_records(
    tmp_path, fast_spec
):
    """Replay discards a torn tail -- and the load must also *remove*
    it (compact), or the next append glues onto the newline-less
    partial line and a second restart silently discards every committed
    record written after the tear."""
    queue = JobQueue(tmp_path)
    a, _ = queue.submit(make_spec(fast_spec, seed=1))
    # A crash mid-append: a partial record with no trailing newline.
    with queue.journal_path.open("ab") as fh:
        fh.write(b'{"seq":2,"op"')
    del queue

    revived = JobQueue(tmp_path)
    assert revived.replay_discarded == 1
    # Committed (fsynced, acknowledged) mutations after the restart...
    b, _ = revived.submit(make_spec(fast_spec, seed=2))
    revived.claim(1)
    del revived

    # ...must all survive the next restart.
    third = JobQueue(tmp_path)
    assert third.replay_discarded == 0
    assert set(third.jobs) == {a.job_id, b.job_id}
    assert third.recovered_jobs == [a.job_id]  # the claim was replayed


def test_cached_submit_births_job_done_atomically(tmp_path, fast_spec):
    """The content-cache short-circuit is a single submit record: the
    job is born ``done`` under the queue lock, so a dispatcher claiming
    concurrently can never race it into ``running``."""
    queue = JobQueue(tmp_path)
    job, created = queue.submit(
        make_spec(fast_spec), cached_result_key="stored-key"
    )
    assert created
    assert job.state == "done" and job.cached
    assert job.result_key == "stored-key"
    assert queue.claim(4) == []  # never claimable
    records, _ = replay_journal(queue.journal_path)
    assert [r.op for r in records] == ["submit"]  # one atomic record
    revived = JobQueue(tmp_path)
    final = revived.get(job.job_id)
    assert final.state == "done" and final.cached
    assert final.result_key == "stored-key"


def test_idempotent_resubmit_after_crash_returns_original_id(
    tmp_path, fast_spec
):
    """The submit record survived the crash even though the response
    was lost: the client's retry must resolve to the original job."""
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec(fast_spec, idempotency_key="retry-me"))
    original_id = job.job_id
    del queue  # crash before the response reached the client

    revived = JobQueue(tmp_path)
    again, created = revived.submit(
        make_spec(fast_spec, idempotency_key="retry-me")
    )
    assert not created and again.job_id == original_id
    assert len(revived.jobs) == 1


def test_replay_any_journal_prefix_is_a_consistent_queue(tmp_path, fast_spec):
    """Crash-anywhere property: rebuild the queue from every byte
    prefix of the journal; each must be a valid queue whose jobs are
    all in legal states with intact specs."""
    queue = JobQueue(tmp_path)
    a, _ = queue.submit(make_spec(fast_spec, seed=1, idempotency_key="ka"))
    b, _ = queue.submit(make_spec(fast_spec, seed=2, priority=2))
    queue.claim(2)
    queue.complete(b.job_id, "key-b")
    queue.requeue(a.job_id, "drain")
    raw = queue.journal_path.read_bytes()

    seen_states = set()
    for cut in range(len(raw) + 1):
        root = tmp_path / f"cut{cut}"
        root.mkdir()
        (root / "journal.jsonl").write_bytes(raw[:cut])
        replayed = JobQueue(root)
        for job in replayed.jobs.values():
            assert job.state in ("queued", "done")  # running was recovered
            assert job.spec.netlist_yal  # specs replay losslessly
            seen_states.add((job.job_id, job.state))
        # Submit still works on every prefix (sequence numbers stay
        # coherent past the torn tail).
        replayed.submit(make_spec(fast_spec, seed=99))
    # The sweep visited both the pre- and post-completion worlds.
    assert (b.job_id, "queued") in seen_states
    assert (b.job_id, "done") in seen_states


def test_every_job_finishes_exactly_once_across_crashes(tmp_path, fast_spec):
    """Exactly-once at the ledger level: complete each job once across
    a crash/replay boundary; the second completion attempt is refused."""
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec(fast_spec))
    queue.claim(1)
    queue.complete(job.job_id, "k")
    revived = JobQueue(tmp_path)
    assert revived.get(job.job_id).state == "done"
    with pytest.raises(ServiceError, match="cannot go"):
        revived.complete(job.job_id, "k2")


def test_compact_preserves_state_and_empties_journal(tmp_path, fast_spec):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec(fast_spec))
    queue.claim(1)
    queue.compact()
    assert replay_journal(queue.journal_path) == ([], 0)
    revived = JobQueue(tmp_path)
    # running -> queued recovery applies to snapshotted state too.
    assert revived.get(job.job_id).state == "queued"
