"""JobSpec validation, content hashing, and the job state machine."""

import pytest

from repro.errors import JobValidationError
from repro.service import JOB_STATES, VALID_TRANSITIONS, Job, JobSpec


def test_spec_roundtrips_through_json(fast_spec):
    spec = JobSpec.from_json(fast_spec)
    assert JobSpec.from_json(spec.to_json()) == spec


def test_spec_rejects_unknown_fields(fast_spec):
    with pytest.raises(JobValidationError, match="unknown job field"):
        JobSpec.from_json({**fast_spec, "sedd": 4})


def test_spec_rejects_bad_representation(fast_spec):
    with pytest.raises(JobValidationError, match="representation"):
        JobSpec.from_json({**fast_spec, "representation": "polsh"})


def test_spec_rejects_empty_netlist():
    with pytest.raises(JobValidationError, match="netlist_yal"):
        JobSpec(netlist_yal="   ")


def test_spec_rejects_unparsable_netlist(fast_spec):
    spec = JobSpec.from_json({**fast_spec, "netlist_yal": "not yal at all"})
    with pytest.raises(JobValidationError, match="does not parse"):
        spec.build_netlist()


def test_content_hash_ignores_service_envelope(fast_spec):
    """Priority/tenant/deadline/idempotency/checkpoint cadence never
    perturb the answer, so they must not perturb the cache key."""
    base = JobSpec.from_json(fast_spec)
    dressed = JobSpec.from_json(
        {
            **fast_spec,
            "priority": 9,
            "tenant": "acme",
            "deadline_seconds": 120.0,
            "idempotency_key": "k",
            "checkpoint_every": 5,
        }
    )
    assert base.content_hash() == dressed.content_hash()


def test_content_hash_tracks_result_fields(fast_spec):
    base = JobSpec.from_json(fast_spec)
    assert (
        JobSpec.from_json({**fast_spec, "seed": 2}).content_hash()
        != base.content_hash()
    )
    assert (
        JobSpec.from_json({**fast_spec, "gamma": 0.5}).content_hash()
        != base.content_hash()
    )


def test_state_machine_shape():
    assert set(VALID_TRANSITIONS) == set(JOB_STATES)
    # Terminal states go nowhere.
    for terminal in ("done", "failed", "cancelled"):
        assert not VALID_TRANSITIONS[terminal]
    # The documented transitions, exactly.
    assert VALID_TRANSITIONS["queued"] == {"running", "done", "cancelled"}
    assert VALID_TRANSITIONS["running"] == {"done", "failed", "queued"}


def test_job_transition_predicates(fast_spec):
    job = Job(job_id="j000001", spec=JobSpec.from_json(fast_spec))
    assert job.active and not job.terminal
    assert job.can_transition("running")
    assert not job.can_transition("failed")  # only running jobs fail
    job.state = "done"
    assert job.terminal and not job.active


def test_status_json_drops_the_netlist(fast_spec):
    job = Job(job_id="j000007", spec=JobSpec.from_json(fast_spec))
    status = job.status_json()
    assert "netlist_yal" not in status["spec"]
    assert status["job_id"] == "j000007"
    # The lossless image keeps it.
    assert Job.from_json(job.to_json()).spec.netlist_yal
