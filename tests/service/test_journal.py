"""The WAL's crash-safety contract: checksums, torn tails, snapshots.

The load-bearing test here is the prefix property: a journal truncated
at *every byte boundary* of its last record replays to a consistent
prefix state -- either the record made it entirely or it is discarded
entirely.  That is the exact guarantee a `kill -9` mid-append needs.
"""

import json

import pytest

from repro.service.journal import (
    JournalRecord,
    append_record,
    decode_line,
    encode_record,
    load_snapshot,
    replay_journal,
    truncate_journal,
    write_snapshot,
)


def _records(n, start=1):
    return [
        JournalRecord(seq=i, op="transition", data={"job_id": f"j{i}", "to": "done"})
        for i in range(start, start + n)
    ]


def test_encode_decode_roundtrip():
    record = JournalRecord(seq=5, op="submit", data={"job_id": "j5", "x": [1, 2]})
    line = encode_record(record)
    assert line.endswith("\n")
    assert decode_line(line.encode()) == record


def test_decode_rejects_flipped_bit():
    line = encode_record(JournalRecord(seq=1, op="submit", data={"a": 1}))
    payload = json.loads(line)
    payload["data"]["a"] = 2  # body changed, crc stale
    with pytest.raises(ValueError, match="checksum"):
        decode_line(json.dumps(payload).encode())


def test_replay_missing_file_is_empty(tmp_path):
    assert replay_journal(tmp_path / "absent.jsonl") == ([], 0)


def test_replay_stops_at_seq_regression(tmp_path):
    path = tmp_path / "journal.jsonl"
    for record in _records(3):
        append_record(path, record)
    append_record(path, JournalRecord(seq=2, op="submit", data={}))  # stale
    records, discarded = replay_journal(path)
    assert [r.seq for r in records] == [1, 2, 3]
    assert discarded == 1


def test_replay_prefix_property_at_every_byte_boundary(tmp_path):
    """Truncating mid-last-record yields exactly the prior records."""
    path = tmp_path / "journal.jsonl"
    for record in _records(3):
        append_record(path, record)
    raw = path.read_bytes()
    last_line = encode_record(_records(3)[-1]).encode()
    body_end = len(raw)
    body_start = body_end - len(last_line)
    for cut in range(body_start, body_end + 1):
        path.write_bytes(raw[:cut])
        records, discarded = replay_journal(path)
        if cut >= body_end - 1:
            # The whole record made it (losing only the cosmetic final
            # newline still leaves a complete checksummed record).
            assert [r.seq for r in records] == [1, 2, 3]
            assert discarded == 0
        else:
            # Any genuinely partial tail must be discarded entirely.
            assert [r.seq for r in records] == [1, 2], f"cut at byte {cut}"
            assert discarded == (1 if raw[body_start:cut].strip() else 0)


def test_replay_prefix_property_across_all_records(tmp_path):
    """The same property holds cutting anywhere in the whole file."""
    path = tmp_path / "journal.jsonl"
    records = _records(4)
    for record in records:
        append_record(path, record)
    raw = path.read_bytes()
    # Byte offsets where each record's line ends.
    ends, offset = [], 0
    for record in records:
        offset += len(encode_record(record).encode())
        ends.append(offset)
    for cut in range(len(raw) + 1):
        path.write_bytes(raw[:cut])
        replayed, _ = replay_journal(path)
        # A record survives once all its content bytes are on disk; the
        # line's trailing newline is only a separator.
        complete = sum(1 for e in ends if e - 1 <= cut)
        assert [r.seq for r in replayed] == list(range(1, complete + 1)), (
            f"cut at byte {cut}"
        )


def test_after_seq_skips_snapshot_covered_records(tmp_path):
    path = tmp_path / "journal.jsonl"
    for record in _records(5):
        append_record(path, record)
    records, _ = replay_journal(path, after_seq=3)
    assert [r.seq for r in records] == [4, 5]


def test_snapshot_roundtrip_and_truncate(tmp_path):
    snap = tmp_path / "snapshot.json"
    journal = tmp_path / "journal.jsonl"
    append_record(journal, _records(1)[0])
    write_snapshot(snap, applied_seq=7, payload={"jobs": [], "next_job": 8})
    truncate_journal(journal)
    applied, state = load_snapshot(snap)
    assert applied == 7 and state["next_job"] == 8
    assert replay_journal(journal) == ([], 0)


def test_snapshot_version_gate(tmp_path):
    snap = tmp_path / "snapshot.json"
    snap.write_text(json.dumps({"version": 99, "applied_seq": 0, "state": {}}))
    with pytest.raises(ValueError, match="version 99"):
        load_snapshot(snap)
