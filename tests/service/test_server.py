"""The HTTP surface: routes, status codes, caching, slow clients.

One live server (module scope) carries the happy-path and error-path
route tests; scenarios that need their own service shape (quotas, a
deliberately clogged single worker) build their own.
"""

import http.client
import json

import pytest

from repro.service import FloorplanService, ServiceClient, ServiceThread
from repro.testing.faults import slow_client_request


@pytest.fixture(scope="module")
def live(tmp_path_factory, tiny_yal):
    """A running service+server; client_timeout is short so the
    slow-client test answers quickly."""
    root = tmp_path_factory.mktemp("service")
    service = FloorplanService(root, workers=2, client_timeout=1.0)
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)
    yield service, client
    thread.stop(drain=True)


@pytest.fixture(scope="module")
def live_spec(tiny_yal):
    return {
        "netlist_yal": tiny_yal,
        "seed": 1,
        "max_steps": 8,
        "moves_per_temperature": 10,
        "checkpoint_every": 1,
    }


def test_submit_wait_result_roundtrip(live, live_spec):
    _, client = live
    submitted = client.submit(live_spec)
    assert submitted["created"] and submitted["job_id"].startswith("j")
    result = client.wait(submitted["job_id"], timeout=120)
    assert result["schema"] == "repro.service.result/v1"
    assert result["completed"] is True
    assert result["placements"]
    # Status now reports done with the content-addressed key.
    info = client.status(submitted["job_id"])
    assert info["state"] == "done"
    assert info["result_key"] == result["content_hash"]


def test_idempotent_resubmit_returns_same_job(live, live_spec):
    _, client = live
    spec = {**live_spec, "seed": 21, "idempotency_key": "once"}
    first = client.submit(spec)
    again = client.submit(spec)
    assert again["job_id"] == first["job_id"]
    assert not again["created"]


def test_cache_hit_short_circuits_to_done(live, live_spec):
    _, client = live
    spec = {**live_spec, "seed": 22}
    first = client.submit(spec)
    first_result = client.wait(first["job_id"], timeout=120)
    # Same content, fresh idempotency key: a new job, already done.
    second = client.submit({**spec, "idempotency_key": "fresh-key"})
    assert second["created"]
    assert second["job_id"] != first["job_id"]
    assert second["state"] == "done"
    assert second["cached"] is True
    assert client.result(second["job_id"]) == first_result


def test_unknown_job_is_404(live):
    _, client = live
    for call in ("status", "result", "cancel"):
        with pytest.raises(Exception) as excinfo:
            getattr(client, call)("j999999")
        assert excinfo.value.status == 404


def test_bad_spec_is_400(live, live_spec):
    _, client = live
    with pytest.raises(Exception) as excinfo:
        client.submit({**live_spec, "sedd": 3})
    assert excinfo.value.status == 400
    assert "unknown job field" in str(excinfo.value)
    with pytest.raises(Exception) as excinfo:
        client.submit({**live_spec, "netlist_yal": "not yal"})
    assert excinfo.value.status == 400
    assert "does not parse" in str(excinfo.value)


def test_non_json_body_is_400(live):
    service, client = live
    conn = http.client.HTTPConnection("127.0.0.1", client.port, timeout=10)
    try:
        conn.request("POST", "/v1/jobs", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 400
    assert "not JSON" in payload["error"]


def test_unknown_route_is_404(live):
    _, client = live
    status, payload = client._request("GET", "/v2/nope")
    assert status == 404 and "no route" in payload["error"]


def test_healthz_and_metrics(live, live_spec):
    _, client = live
    health = client.healthz()
    assert health["status"] == "ok" and health["uptime_seconds"] >= 0
    ready, payload = client.readyz()
    assert ready and payload["draining"] is False
    snapshot = client.metrics()
    assert snapshot["counters"]["service_jobs_submitted"] >= 1
    assert "service_jobs_done" in snapshot["gauges"]


def test_slow_client_gets_408_not_a_pinned_task(live):
    """A client that promises a body and never sends it is cut off with
    408 after ``client_timeout`` -- and the server stays healthy."""
    _, client = live
    response = slow_client_request("127.0.0.1", client.port, hold_seconds=10.0)
    assert b"408" in response.split(b"\r\n", 1)[0]
    assert client.healthz()["status"] == "ok"  # nothing got pinned


def _parse_request(blob: bytes):
    """Drive ServiceServer._read_request over an in-memory stream."""
    import asyncio
    from types import SimpleNamespace

    from repro.service import ServiceServer

    server = ServiceServer(SimpleNamespace(client_timeout=5.0))

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await server._read_request(reader)

    return asyncio.run(run())


def test_header_count_flood_is_rejected():
    """Endless header lines hit the count cap (-> ValueError -> 400);
    the headers dict cannot be grown without bound."""
    blob = b"GET /healthz HTTP/1.1\r\n" + b"".join(
        b"x-filler-%d: a\r\n" % i for i in range(200)
    )
    with pytest.raises(ValueError, match="header lines"):
        _parse_request(blob)


def test_header_byte_flood_is_rejected():
    """A few huge header lines hit the byte cap instead."""
    blob = b"GET /healthz HTTP/1.1\r\n" + b"".join(
        b"x-big-%d: %s\r\n" % (i, b"a" * 8000) for i in range(3)
    )
    with pytest.raises(ValueError, match="bytes"):
        _parse_request(blob)


def test_reasonable_headers_still_parse():
    blob = (
        b"GET /healthz HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"Content-Length: 2\r\n"
        b"\r\n"
        b"{}"
    )
    method, path, headers, body = _parse_request(blob)
    assert (method, path, body) == ("GET", "/healthz", b"{}")
    assert headers["host"] == "localhost"


def test_handler_infrastructure_failure_is_500(tmp_path, monkeypatch):
    """A non-ServiceError escaping a handler (full disk, corrupt stored
    result) must surface as a well-formed 500, not a connection reset,
    and must not leak details to the client."""
    from repro.service import FloorplanService, ServiceServer

    service = FloorplanService(tmp_path, workers=1)
    server = ServiceServer(service)

    def boom(body):
        raise OSError("disk full writing journal")

    monkeypatch.setattr(service, "submit_job", boom)
    status, payload = server._route("POST", "/v1/jobs", b"{}")
    assert status == 500
    assert "internal error" in payload["error"]
    assert "disk full" not in payload["error"]
    counters = service.metrics.snapshot()["counters"]
    assert counters["service_internal_errors"] == 1


def test_queued_job_result_409_and_cancel(tmp_path, tiny_yal):
    """With one busy worker, a queued job answers 409 on its result
    route, cancels cleanly, and a running job refuses cancellation."""
    service = FloorplanService(tmp_path, workers=1)
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)
    long_spec = {
        "netlist_yal": tiny_yal,
        "seed": 5,
        "max_steps": 100000,
        "moves_per_temperature": 200,
        "checkpoint_every": 50,
    }
    try:
        runner = client.submit(long_spec)
        waiter = client.submit({**long_spec, "seed": 6})
        with pytest.raises(Exception) as excinfo:
            client.result(waiter["job_id"])
        assert excinfo.value.status == 409
        assert "no result yet" in excinfo.value.payload["error"]
        # The queued job cancels; 404s thereafter would be wrong -- it
        # stays visible as cancelled.
        cancelled = client.cancel(waiter["job_id"])
        assert cancelled["state"] == "cancelled"
        assert client.status(waiter["job_id"])["state"] == "cancelled"
        # Cancel is not a kill switch: running jobs refuse it.
        import time as _time
        deadline = _time.monotonic() + 30
        while client.status(runner["job_id"])["state"] != "running":
            assert _time.monotonic() < deadline
            _time.sleep(0.05)
        with pytest.raises(Exception) as excinfo:
            client.cancel(runner["job_id"])
        assert excinfo.value.status == 409
    finally:
        thread.stop(drain=True)
    # Drain requeued the running job for the next server life.
    assert service.queue.get(runner["job_id"]).state == "queued"


def test_tenant_quota_is_429(tmp_path, tiny_yal):
    service = FloorplanService(tmp_path, workers=1, tenant_quota=1)
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)
    long_spec = {
        "netlist_yal": tiny_yal,
        "seed": 7,
        "max_steps": 100000,
        "moves_per_temperature": 200,
        "checkpoint_every": 50,
        "tenant": "acme",
    }
    try:
        client.submit(long_spec)
        with pytest.raises(Exception) as excinfo:
            client.submit({**long_spec, "seed": 8})
        assert excinfo.value.status == 429
        assert "acme" in str(excinfo.value)
    finally:
        thread.stop(drain=True)


def test_readyz_goes_503_on_drain(tmp_path):
    service = FloorplanService(tmp_path, workers=1)
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)
    try:
        ready, _ = client.readyz()
        assert ready
        service.drain()
        ready, payload = client.readyz()
        assert not ready and payload["draining"] is True
        # The listener still answers during the drain window.
        assert client.healthz()["status"] == "ok"
    finally:
        thread.stop(drain=True)
