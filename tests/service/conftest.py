"""Shared fixtures for the service suite: tiny circuits, fast specs."""

import pytest

from repro.data import dumps_yal
from repro.netlist import random_circuit


@pytest.fixture(scope="session")
def tiny_yal() -> str:
    """A 6-module circuit as YAL text (jobs finish in well under a
    second at the fast spec below)."""
    return dumps_yal(random_circuit(6, 8, seed=3))


@pytest.fixture
def fast_spec(tiny_yal):
    """A job spec dict that anneals quickly but still crosses several
    temperature steps (so checkpoints and mid-run faults have room)."""
    return {
        "netlist_yal": tiny_yal,
        "seed": 1,
        "max_steps": 8,
        "moves_per_temperature": 10,
        "checkpoint_every": 1,
    }
