"""ServiceFleet end-to-end: supervised execution, faults, drains.

The load-bearing assertion in this file is *bit-identity*: a job whose
worker is killed mid-run and resumed from its checkpoint must file a
result payload `==` to the payload of an uninterrupted direct
:class:`~repro.engine.engine.AnnealEngine` run of the same spec.  That
equality is what makes the service's exactly-once result promise sound
on top of at-least-once execution.
"""

import time

import pytest

from repro.engine.engine import AnnealEngine
from repro.obs import MetricsRegistry
from repro.service import (
    JobQueue,
    JobSpec,
    ResultStore,
    ServiceFleet,
    result_payload,
)
from repro.testing.faults import JobFault


def direct_result(spec: JobSpec) -> dict:
    """What an uninterrupted in-process run of ``spec`` produces."""
    engine = AnnealEngine(
        spec.build_netlist(),
        representation=spec.representation,
        objective_spec=spec.objective_spec(),
        seed=spec.seed,
        moves_per_temperature=spec.moves_per_temperature,
        schedule=spec.schedule(),
    )
    return result_payload(engine.run(), spec)


def make_fleet(tmp_path, faults=None, **kwargs):
    queue = JobQueue(tmp_path / "queue")
    store = ResultStore(tmp_path / "results")
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("poll_interval", 0.02)
    fleet = ServiceFleet(
        queue, store, tmp_path / "work", faults=faults, **kwargs
    )
    return queue, store, fleet


def wait_for_state(queue, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if queue.get(job_id).state == state:
            return True
        time.sleep(0.02)
    return False


def test_jobs_complete_end_to_end(tmp_path, fast_spec):
    metrics = MetricsRegistry()
    queue, store, fleet = make_fleet(tmp_path, metrics=metrics)
    specs = [JobSpec.from_json({**fast_spec, "seed": s}) for s in (1, 2, 3)]
    jobs = [queue.submit(spec)[0] for spec in specs]
    fleet.start()
    try:
        assert fleet.wait_idle(timeout=120)
    finally:
        fleet.drain(timeout=30)
    for job, spec in zip(jobs, specs):
        final = queue.get(job.job_id)
        assert final.state == "done", final.error
        stored = store.get(final.result_key)
        assert stored == direct_result(spec)
    assert metrics.snapshot()["counters"]["service_jobs_done"] == 3


def test_killed_worker_resumes_bit_identical(tmp_path, fast_spec):
    """Kill the pool worker at temperature step 4 of attempt 0; the
    retry must resume the checkpoint and deliver the exact payload an
    uninterrupted run delivers, with the crash on the blame ledger."""
    spec = JobSpec.from_json({**fast_spec, "max_steps": 12})
    queue, store, fleet = make_fleet(
        tmp_path,
        faults={
            "j000001": JobFault(
                kind="crash", attempt=0, mode="pool", at_step=4
            )
        },
    )
    job, _ = queue.submit(spec)
    fleet.start()
    try:
        assert fleet.wait_idle(timeout=120)
    finally:
        fleet.drain(timeout=30)
    final = queue.get(job.job_id)
    assert final.state == "done", final.error
    assert store.get(final.result_key) == direct_result(spec)
    # The supervision ledger names the crash and charged it one try.
    kinds = [f["kind"] for f in final.report["failures"]]
    assert kinds == ["crash"]
    assert final.report["attempts"] == 2  # the kill + the resume


def test_drain_requeues_and_restart_finishes_exactly_once(
    tmp_path, fast_spec
):
    """SIGTERM story at fleet level: drain mid-run checkpoints the job
    and requeues it; a fresh fleet on the same directories resumes it
    to the same answer as an uninterrupted run."""
    spec = JobSpec.from_json(
        {**fast_spec, "max_steps": 400, "moves_per_temperature": 200}
    )
    queue, store, fleet = make_fleet(tmp_path, workers=1)
    job, _ = queue.submit(spec)
    fleet.start()
    assert wait_for_state(queue, job.job_id, "running")
    time.sleep(0.3)  # let it write a few checkpoints first
    fleet.drain(timeout=30)
    requeued = queue.get(job.job_id)
    assert requeued.state == "queued"
    assert "stopped" in requeued.error or "drain" in requeued.error

    # The replacement server: same queue/store/work directories.
    queue2 = JobQueue(tmp_path / "queue")
    fleet2 = ServiceFleet(
        queue2, store, tmp_path / "work", workers=1, poll_interval=0.02
    )
    fleet2.start()
    try:
        assert fleet2.wait_idle(timeout=180)
    finally:
        fleet2.drain(timeout=30)
    final = queue2.get(job.job_id)
    assert final.state == "done", final.error
    assert store.get(final.result_key) == direct_result(spec)


def test_deadline_delivers_partial_under_job_key(tmp_path, fast_spec):
    """A deadline stop is a *successful* outcome: best-so-far goes done
    under the per-job key, never under the content hash."""
    spec = JobSpec.from_json(
        {
            **fast_spec,
            "max_steps": 100000,
            "moves_per_temperature": 200,
            "deadline_seconds": 0.3,
        }
    )
    queue, store, fleet = make_fleet(tmp_path, workers=1)
    job, _ = queue.submit(spec)
    fleet.start()
    try:
        assert fleet.wait_idle(timeout=120)
    finally:
        fleet.drain(timeout=30)
    final = queue.get(job.job_id)
    assert final.state == "done", final.error
    assert final.result_key == f"job-{job.job_id}"
    partial = store.get(final.result_key)
    assert partial["completed"] is False
    assert partial["stop_reason"] == "deadline"
    assert partial["placements"]  # best-so-far is a real floorplan
    assert not store.has(spec.content_hash())  # never the canonical key


def test_settle_tolerates_one_raced_job(tmp_path, fast_spec):
    """One job raced to a terminal state by someone else must not
    abort the settling of its batch-mates -- their finished results
    would otherwise be discarded and fully re-run."""
    from repro.engine.multistart import RunReport
    from repro.service.worker import JobOutcome

    queue, store, fleet = make_fleet(tmp_path)
    a, _ = queue.submit(JobSpec.from_json({**fast_spec, "seed": 31}))
    b, _ = queue.submit(JobSpec.from_json({**fast_spec, "seed": 32}))
    batch = queue.claim(2)
    assert [j.job_id for j in batch] == [a.job_id, b.job_id]
    # The race: a third party completes `a` while its worker runs.
    queue.complete(a.job_id, "raced-key")
    results = {
        k: JobOutcome(
            job_id=job.job_id,
            completed=True,
            stop_reason=None,
            resumed=False,
            checkpoints_written=0,
            result={"payload": job.job_id},
        )
        for k, job in enumerate(batch)
    }
    reports = {
        k: RunReport(seed=job.spec.seed, label=job.job_id)
        for k, job in enumerate(batch)
    }
    fleet._settle_batch(batch, results, reports)
    # `a` stays as the race left it; `b`'s result still landed.
    assert queue.get(a.job_id).result_key == "raced-key"
    final_b = queue.get(b.job_id)
    assert final_b.state == "done"
    assert store.get(final_b.result_key) == {"payload": b.job_id}


def test_exhausted_retries_fail_with_blame(tmp_path, fast_spec):
    """A job whose spec cannot build raises on every attempt; the job
    fails with the supervision ledger naming each raise."""
    spec = JobSpec.from_json({**fast_spec, "netlist_yal": "not yal"})
    metrics = MetricsRegistry()
    queue, store, fleet = make_fleet(
        tmp_path, workers=1, max_retries=1, retry_backoff=0.01,
        metrics=metrics,
    )
    job, _ = queue.submit(spec)
    fleet.start()
    try:
        assert fleet.wait_idle(timeout=120)
    finally:
        fleet.drain(timeout=30)
    final = queue.get(job.job_id)
    assert final.state == "failed"
    assert "does not parse" in final.error
    kinds = [f["kind"] for f in final.report["failures"]]
    assert kinds == ["error", "error"]  # initial try + 1 retry
    assert metrics.snapshot()["counters"]["service_jobs_failed"] == 1


def test_degraded_fleet_latches_sequential_and_still_finishes(
    tmp_path, fast_spec
):
    """With zero pool rebuilds allowed, one worker kill degrades the
    fleet to sequential execution -- permanently -- and the job still
    completes bit-identically via the in-process path."""
    spec = JobSpec.from_json({**fast_spec, "max_steps": 12})
    metrics = MetricsRegistry()
    queue, store, fleet = make_fleet(
        tmp_path,
        workers=2,
        max_pool_rebuilds=0,
        metrics=metrics,
        faults={
            "j000001": JobFault(
                kind="crash", attempt=0, mode="pool", at_step=3
            )
        },
    )
    job, _ = queue.submit(spec)
    fleet.start()
    try:
        assert fleet.wait_idle(timeout=120)
    finally:
        fleet.drain(timeout=30)
    assert fleet.sequential_only  # the latch stuck
    final = queue.get(job.job_id)
    assert final.state == "done", final.error
    assert store.get(final.result_key) == direct_result(spec)
    counters = metrics.snapshot()["counters"]
    assert counters["service_degraded"] == 1
