"""Worker -> coordinator progress streaming over the supervision seam.

Progress snapshots and metrics registries are collected inside worker
processes, ride home as plain data on :class:`EngineResult`, and merge
into the coordinator's observer -- identically whether restarts run
sequentially or on a process pool.  The same seam now also carries
per-restart cache statistics and JIT compile time into
:class:`RunReport`, fixing the old behavior where ``--perf`` tables
silently dropped everything measured in workers.
"""

import json

import pytest

from repro.anneal import GeometricSchedule
from repro.engine import (
    DriverConfig,
    MultiStartEngine,
    ObjectiveSpec,
    RunReport,
    make_driver,
)
from repro.netlist import random_circuit
from repro.obs import ObsPlan, ProgressSnapshot, RunObserver, Tracer


@pytest.fixture(scope="module")
def netlist():
    return random_circuit(8, 20, seed=3)


_SPEC = ObjectiveSpec(
    gamma=1.0,
    pin_grid_size=30.0,
    congestion_grid_size=30.0,
    strict_incremental=True,
)

_SCHEDULE = GeometricSchedule(
    cooling_rate=0.85, freeze_ratio=1e-3, max_steps=30
)


def _multistart(netlist, workers, obs_plan):
    return MultiStartEngine(
        netlist,
        representation="polish",
        restarts=3,
        seed=1,
        objective_spec=_SPEC,
        moves_per_temperature=35,
        schedule=_SCHEDULE,
        workers=workers,
        obs_plan=obs_plan,
    )


class TestObsPlan:
    def test_disabled_plan_builds_no_observer(self):
        plan = ObsPlan(progress_every=0)
        assert not plan.enabled
        assert plan.build_observer() is None

    def test_enabled_plan_builds_tracerless_observer(self):
        observer = ObsPlan(progress_every=2, top_k=1).build_observer()
        assert observer.progress_every == 2
        assert not observer.tracer.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsPlan(progress_every=-1)
        with pytest.raises(ValueError):
            ObsPlan(progress_every=1, top_k=-1)


class TestProgressSnapshot:
    def test_json_round_trip(self):
        snapshot = ProgressSnapshot(
            step=4,
            temperature=0.5,
            current_cost=2.0,
            best_cost=1.5,
            n_moves=140,
            n_accepted=80,
            elapsed_seconds=0.25,
            top_densities=(1.25, 1.0),
        )
        data = json.loads(json.dumps(snapshot.to_json()))
        assert ProgressSnapshot.from_json(data) == snapshot


class TestTopDensityPaths:
    """The committed-arrays fast path agrees with the scalar fallback.

    Snapshot-time top densities are read straight off the incremental
    pipeline's committed edge arrays when available; the from-scratch
    pin-assignment path must produce the same values, because pool and
    sequential runs (and incremental and seed objectives) may take
    different branches of the same observer.
    """

    def test_committed_array_path_matches_scalar_fallback(self, netlist):
        from dataclasses import replace

        from repro.engine import AnnealEngine
        from repro.obs import top_congestion_densities
        from repro.perf import CacheContext

        floorplan = AnnealEngine(
            netlist,
            representation="polish",
            objective_spec=_SPEC,
            seed=7,
            moves_per_temperature=10,
            schedule=GeometricSchedule(
                cooling_rate=0.7, freeze_ratio=1e-2, max_steps=5
            ),
        ).run().floorplan

        incremental = _SPEC.build(netlist, CacheContext())
        incremental.evaluate_floorplan(floorplan)
        incremental.commit()
        assert incremental.pipeline.committed is not None

        def must_not_realize():
            raise AssertionError("fast path must not materialize")

        fast = top_congestion_densities(incremental, must_not_realize, 4)

        scalar = replace(
            _SPEC, incremental=False, strict_incremental=False
        ).build(netlist, CacheContext())
        assert scalar.pipeline.committed is None
        slow = top_congestion_densities(scalar, floorplan, 4)

        assert len(fast) == 4
        assert fast == slow


class TestWorkerStreaming:
    def test_snapshots_reach_coordinator_pool_and_sequential(
        self, netlist, tmp_path
    ):
        plan = ObsPlan(progress_every=2, top_k=2)
        outcomes = {}
        for workers in (1, 2):
            observer = RunObserver(
                tracer=Tracer(tmp_path / f"w{workers}.jsonl")
            )
            outcome = _multistart(netlist, workers, plan).run(
                observer=observer
            )
            observer.finalize()
            outcomes[workers] = (outcome, observer)

        seq_outcome, seq_observer = outcomes[1]
        pool_outcome, pool_observer = outcomes[2]
        # The search itself is bit-identical across pool sizes...
        assert seq_outcome.best.cost == pool_outcome.best.cost
        assert [r.n_moves for r in seq_outcome.results] == [
            r.n_moves for r in pool_outcome.results
        ]
        # ...and so is the progress stream that came home (modulo
        # elapsed wall-clock, which legitimately varies per run).
        def stream(observer):
            return [
                {
                    k: v
                    for k, v in s.to_json().items()
                    if k != "elapsed_seconds"
                }
                for s in observer.progress
            ]

        seq_stream = stream(seq_observer)
        pool_stream = stream(pool_observer)
        assert seq_stream and seq_stream == pool_stream
        # Every result carried its own snapshots and metrics payload.
        for result in pool_outcome.results:
            assert result.progress
            assert result.metrics["counters"]["evaluations"] > 0
        # The coordinator folded worker metrics into one registry.
        merged = pool_observer.metrics.snapshot()
        assert merged["counters"]["evaluations"] == sum(
            r.metrics["counters"]["evaluations"]
            for r in pool_outcome.results
        )

    def test_reports_carry_cache_stats_and_jit(self, netlist):
        outcome = _multistart(netlist, 2, None).run()
        for report in outcome.reports:
            assert report.status == "ok"
            assert report.cache_stats  # measured inside the worker
            assert report.jit_compile_seconds >= 0.0
        merged = outcome.merged_perf()
        assert merged.timers and merged.counters
        caches = outcome.merged_cache_stats()
        assert caches
        # Folded lookups equal the per-restart sums.
        name, stats = next(iter(caches.items()))
        assert stats.lookups == sum(
            r.cache_stats[name].lookups for r in outcome.results
        )

    def test_run_report_round_trips_new_fields(self):
        report = RunReport(seed=3)
        report.jit_compile_seconds = 1.5
        report.cache_stats = {
            "subtree_shapes": {
                "hits": 10, "misses": 2, "size": 2,
                "maxsize": 8, "evictions": 0,
            }
        }
        restored = RunReport.from_json(json.loads(json.dumps(report.to_json())))
        assert restored.jit_compile_seconds == 1.5
        assert restored.cache_stats == report.cache_stats
        # Old checkpoints without the fields still load.
        legacy = report.to_json()
        del legacy["cache_stats"], legacy["jit_compile_seconds"]
        restored = RunReport.from_json(legacy)
        assert restored.cache_stats == {}
        assert restored.jit_compile_seconds == 0.0


class TestDriverLedgerEvidence:
    def _config(self, netlist, **overrides):
        defaults = dict(
            netlist=netlist,
            restarts=3,
            rounds=2,
            seed=1,
            objective_spec=_SPEC,
            moves_per_temperature=35,
            schedule=_SCHEDULE,
            progress_every=1,
        )
        defaults.update(overrides)
        return DriverConfig(**defaults)

    def test_tempering_swaps_hit_the_trace(self, netlist, tmp_path):
        path = tmp_path / "tempering.jsonl"
        observer = RunObserver(tracer=Tracer(path, flush_every=1))
        outcome = make_driver("tempering", self._config(netlist)).run(
            observer=observer
        )
        observer.finalize()
        from repro.obs import iter_trace

        records = list(iter_trace(path))
        swaps = [r for r in records if r["name"] == "swap"]
        # Every ledger entry left evidence on disk, attrs intact.
        assert len(swaps) == len(outcome.ledger["swaps"])
        for record, entry in zip(swaps, outcome.ledger["swaps"]):
            assert record["attrs"] == entry
        assert [r for r in records if r["kind"] == "progress"]

    def test_portfolio_allocations_hit_the_trace(self, netlist, tmp_path):
        path = tmp_path / "portfolio.jsonl"
        observer = RunObserver(tracer=Tracer(path, flush_every=1))
        outcome = make_driver("portfolio", self._config(netlist)).run(
            observer=observer
        )
        observer.finalize()
        from repro.obs import iter_trace

        records = list(iter_trace(path))
        allocations = [r for r in records if r["name"] == "allocation"]
        assert len(allocations) == len(outcome.ledger["rounds"])
        planned = [r for r in records if r["name"] == "leg_planned"]
        assert len(planned) == sum(
            len(entry["legs"]) for entry in outcome.ledger["rounds"]
        )
        snap = observer.metrics.snapshot()
        slot_counters = {
            k: v for k, v in snap["counters"].items() if k.startswith("slots[")
        }
        assert sum(slot_counters.values()) == len(planned)
