"""The unified metrics registry: histograms, gauges, perf facade, merge.

The registry must subsume the :mod:`repro.perf` facade (timers and
counters accumulate in its owned recorder) while adding gauges and
fixed-bucket histograms, and every shape must survive a
``snapshot`` -> ``merge_snapshot`` round trip so worker registries fold
losslessly into the coordinator's.
"""

import pytest

from repro.obs import (
    DEFAULT_RATE_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.perf import CacheStats


class TestHistogram:
    def test_bucket_placement(self):
        hist = Histogram([0.5, 1.0])
        for value in (0.0, 0.5, 0.75, 1.0, 2.0):
            hist.observe(value)
        # Bounds are inclusive upper edges; one overflow bucket.
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.min == 0.0 and hist.max == 2.0
        assert hist.mean == pytest.approx(4.25 / 5)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram([])
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram([2.0, 1.0])

    def test_snapshot_merge_round_trip(self):
        a = Histogram([0.5, 1.0])
        b = Histogram([0.5, 1.0])
        a.observe(0.2)
        b.observe(0.9)
        b.observe(1.5)
        a.merge_snapshot(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.total == pytest.approx(2.6)
        assert a.min == 0.2 and a.max == 1.5

    def test_merge_empty_keeps_extrema_none(self):
        a = Histogram([1.0])
        a.merge_snapshot(Histogram([1.0]).snapshot())
        assert a.min is None and a.max is None and a.count == 0

    def test_merge_rejects_shape_mismatch(self):
        a = Histogram([0.5])
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge_snapshot(Histogram([0.25, 0.5]).snapshot())

    def test_default_rate_buckets_cover_unit_interval(self):
        assert DEFAULT_RATE_BUCKETS[0] == 0.05
        assert DEFAULT_RATE_BUCKETS[-1] == 1.0
        assert len(DEFAULT_RATE_BUCKETS) == 20


class TestMetricsRegistry:
    def test_perf_facade_accumulates(self):
        registry = MetricsRegistry()
        with registry.timeit("packing"):
            pass
        registry.add_time("packing", 0.25)
        registry.count("evaluations", 3)
        snap = registry.snapshot()
        assert snap["timers"]["packing"]["calls"] == 2
        assert snap["timers"]["packing"]["seconds"] >= 0.25
        assert snap["counters"] == {"evaluations": 3}

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("temperature", 10.0)
        registry.gauge("temperature", 2.5)
        assert registry.snapshot()["gauges"] == {"temperature": 2.5}

    def test_observe_creates_histogram_on_first_use(self):
        registry = MetricsRegistry()
        registry.observe("move_acceptance_rate", 0.42)
        registry.observe("move_acceptance_rate", 0.97)
        hist = registry.snapshot()["histograms"]["move_acceptance_rate"]
        assert hist["count"] == 2
        assert hist["bounds"] == list(DEFAULT_RATE_BUCKETS)

    def test_cache_gauges_skip_untouched_caches(self):
        registry = MetricsRegistry()
        registry.set_cache_gauges(
            {
                "hot": CacheStats(
                    hits=3, misses=1, size=4, maxsize=8, evictions=0
                ),
                "cold": CacheStats(
                    hits=0, misses=0, size=0, maxsize=8, evictions=0
                ),
            }
        )
        gauges = registry.snapshot()["gauges"]
        assert gauges == {"cache_hit_rate.hot": pytest.approx(0.75)}

    def test_merge_snapshot_folds_every_shape(self):
        worker = MetricsRegistry()
        worker.add_time("packing", 1.0)
        worker.count("evaluations", 5)
        worker.gauge("best_cost", 1.5)
        worker.observe("move_acceptance_rate", 0.3)

        coordinator = MetricsRegistry()
        coordinator.add_time("packing", 0.5)
        coordinator.count("evaluations", 2)
        coordinator.observe("move_acceptance_rate", 0.8)
        coordinator.merge_snapshot(worker.snapshot())

        snap = coordinator.snapshot()
        assert snap["timers"]["packing"]["seconds"] == pytest.approx(1.5)
        assert snap["timers"]["packing"]["calls"] == 2
        assert snap["counters"]["evaluations"] == 7
        assert snap["gauges"]["best_cost"] == 1.5
        assert snap["histograms"]["move_acceptance_rate"]["count"] == 2

    def test_merge_is_json_safe(self):
        """A snapshot survives JSON serialization before merging --
        the exact path worker results take through the pickle seam and
        trace files."""
        import json

        worker = MetricsRegistry()
        worker.count("evaluations", 1)
        worker.observe("move_acceptance_rate", 0.5)
        coordinator = MetricsRegistry()
        coordinator.merge_snapshot(json.loads(json.dumps(worker.snapshot())))
        assert coordinator.snapshot()["counters"]["evaluations"] == 1

    def test_null_registry_discards_everything(self):
        NULL_METRICS.gauge("temperature", 1.0)
        NULL_METRICS.observe("rate", 0.5)
        NULL_METRICS.merge_snapshot({"counters": {"x": 1}})
        snap = NULL_METRICS.snapshot()
        assert snap["gauges"] == {} and snap["histograms"] == {}
