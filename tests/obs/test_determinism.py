"""Observability must never change the walk.

Every observer hook sits strictly between moves and touches no random
number generator, so the same engine run must be **bit-identical**
with observability disabled, with tracing enabled, and with tracing
plus progress-snapshot sampling -- across all three representations,
with ``strict_incremental=True`` so any full-vs-delta divergence
raises inside the run itself.
"""

import pytest

from repro.anneal import GeometricSchedule
from repro.engine import AnnealEngine, ObjectiveSpec
from repro.netlist import random_circuit
from repro.obs import RunObserver, Tracer, validate_trace_file


@pytest.fixture(scope="module")
def netlist():
    return random_circuit(8, 20, seed=3)


def _run(netlist, representation, observer=None):
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective_spec=ObjectiveSpec(
            gamma=1.0,
            pin_grid_size=30.0,
            congestion_grid_size=30.0,
            strict_incremental=True,
        ),
        seed=7,
        moves_per_temperature=35,
        schedule=GeometricSchedule(
            cooling_rate=0.85, freeze_ratio=1e-3, max_steps=30
        ),
    )
    return engine.run(observer=observer)


def _fingerprint(result):
    """Everything the walk determines: the full cost breakdown, the
    move/acceptance counts, and the realized floorplan geometry."""
    b = result.breakdown
    rects = tuple(
        (name, rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
        for name, rect in sorted(result.floorplan.placements.items())
    )
    return (
        b.area,
        b.wirelength,
        b.congestion,
        b.cost,
        result.n_moves,
        result.n_accepted,
        rects,
    )


@pytest.mark.parametrize("representation", ["polish", "sp", "btree"])
def test_walk_identical_with_observability_on(
    netlist, representation, tmp_path
):
    baseline = _fingerprint(_run(netlist, representation))

    traced_observer = RunObserver(
        tracer=Tracer(tmp_path / f"{representation}.jsonl")
    )
    traced = _fingerprint(_run(netlist, representation, traced_observer))
    traced_observer.finalize()

    sampling_observer = RunObserver(
        tracer=Tracer(tmp_path / f"{representation}_sampled.jsonl"),
        progress_every=2,
        progress_top_k=2,
    )
    sampled = _fingerprint(_run(netlist, representation, sampling_observer))
    sampling_observer.finalize()

    assert traced == baseline
    assert sampled == baseline

    # The traces themselves must conform to the schema, and sampling
    # must actually have happened.
    assert validate_trace_file(tmp_path / f"{representation}.jsonl") > 0
    assert validate_trace_file(tmp_path / f"{representation}_sampled.jsonl") > 0
    assert sampling_observer.progress
    assert any(s.top_densities for s in sampling_observer.progress)


def test_observer_collects_run_metrics(netlist, tmp_path):
    observer = RunObserver(tracer=Tracer(tmp_path / "m.jsonl"))
    result = _run(netlist, "polish", observer)
    observer.finalize()
    snap = observer.metrics.snapshot()
    assert snap["counters"]["evaluations"] > 0
    assert snap["histograms"]["move_acceptance_rate"]["count"] > 0
    assert snap["gauges"]["best_cost"] == pytest.approx(result.cost)
    # The engine result carries the same payload for the pickle seam.
    assert result.metrics["counters"] == snap["counters"]
