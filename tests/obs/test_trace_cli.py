"""The ``--trace`` flag and the ``floorplan trace`` subcommand.

End-to-end through :func:`repro.cli.main`: a traced run writes a
schema-valid JSONL file without changing the reported result, and the
``trace`` subcommand renders phase attribution, the convergence table
and the ASCII cost curve from it (``--json`` emits the machine image).
"""

import json
import os
from unittest import mock

import pytest

from repro.cli import main
from repro.data import write_yal
from repro.netlist import random_circuit
from repro.obs import summarize_trace, validate_trace_file


@pytest.fixture(autouse=True)
def smoke_profile():
    with mock.patch.dict(
        os.environ, {"REPRO_PROFILE": "smoke", "REPRO_SEEDS": "1"}
    ):
        yield


@pytest.fixture(scope="module")
def circuit_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("circuit") / "tiny.yal"
    write_yal(random_circuit(8, 20, seed=3), path)
    return path


def test_traced_run_matches_untraced(circuit_path, tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["floorplan", str(circuit_path), "--seed", "1"]) == 0
    untraced = capsys.readouterr().out
    assert (
        main(
            [
                "floorplan", str(circuit_path), "--seed", "1",
                "--trace", str(trace), "--metrics-every", "2",
            ]
        )
        == 0
    )
    traced = capsys.readouterr().out
    assert f"wrote trace to {trace}" in traced
    # Same best result either way (formats differ: the traced path
    # reports through the engine, which also names the representation).
    untraced_cost = untraced.split("judge ")[1].split(",")[0]
    traced_cost = traced.split("judge ")[1].split(",")[0]
    assert traced_cost == untraced_cost
    assert validate_trace_file(trace) > 0


def test_trace_subcommand_renders_summary(circuit_path, tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert (
        main(
            [
                "floorplan", str(circuit_path), "--seed", "1",
                "--trace", str(trace), "--metrics-every", "2",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "phase time attribution" in out
    assert "anneal" in out and "warmup" in out
    assert "convergence" in out
    assert "best cost" in out

    assert main(["trace", str(trace), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["n_events"] == validate_trace_file(trace)
    assert data["n_progress"] > 0
    assert data["metrics"]["counters"]["evaluations"] > 0
    # The JSON image agrees with the summarizer's own object.
    assert data == summarize_trace(trace).to_json()


def test_trace_subcommand_rejects_bad_input(tmp_path, capsys):
    with pytest.raises(SystemExit, match="no such trace file"):
        main(["trace", str(tmp_path / "missing.jsonl")])
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"not": "a trace"}\n')
    with pytest.raises(SystemExit, match="invalid trace file"):
        main(["trace", str(bad)])


def test_driver_run_traces_scheduling_ledger(circuit_path, tmp_path, capsys):
    trace = tmp_path / "tempering.jsonl"
    assert (
        main(
            [
                "floorplan", str(circuit_path),
                "--driver", "tempering", "--restarts", "2",
                "--rounds", "2", "--trace", str(trace),
                "--metrics-every", "1",
            ]
        )
        == 0
    )
    capsys.readouterr()
    summary = summarize_trace(trace)
    assert summary.swaps_proposed >= 1
    assert summary.progress  # replica snapshots reached the trace
    assert "span:round" in summary.event_counts
    assert main(["trace", str(trace)]) == 0
    assert "replica swaps" in capsys.readouterr().out
