"""Tracer mechanics and the trace event schema validator.

The contracts under test:

* a :class:`~repro.obs.Tracer` writes JSONL that round-trips through
  the strict validator -- nested span ids/parents, monotone
  timestamps, ``attrs`` passthrough (None allowed, tuples become
  lists, non-JSON values degrade to ``repr`` instead of raising);
* flushing is buffered but crash-safe: anything flushed is a readable
  prefix of complete lines even if the process dies with more events
  still buffered;
* the validator rejects every malformed envelope loudly, naming the
  offending line.
"""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_VERSION,
    Tracer,
    TraceSchemaError,
    iter_trace,
    validate_event,
    validate_trace_file,
)


def _ok_record(**overrides):
    record = {
        "v": TRACE_VERSION,
        "ts": 0.5,
        "kind": "event",
        "name": "swap",
        "span": 3,
        "parent": None,
        "attrs": {"accepted": True},
    }
    record.update(overrides)
    return record


class TestTracer:
    def test_nested_spans_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("run", circuit="ami33") as run_id:
            with tracer.span("round", index=0) as round_id:
                tracer.event("swap", {"accepted": True, "cost": None})
                tracer.progress("anneal", {"best_cost": 1.25})
            tracer.metric("run_metrics", {"counters": {"evaluations": 7}})
        tracer.close()
        records = list(iter_trace(path))
        assert validate_trace_file(path) == len(records) == 7
        kinds = [r["kind"] for r in records]
        assert kinds == [
            "span_start", "span_start", "event", "progress",
            "span_end", "metric", "span_end",
        ]
        run_start, round_start, event, progress = records[:4]
        assert run_start["span"] == run_id and run_start["parent"] is None
        assert round_start["parent"] == run_id and round_start["span"] == round_id
        # Non-span records carry the innermost *enclosing* span.
        assert event["span"] == round_id
        assert progress["span"] == round_id
        assert records[5]["span"] == run_id  # metric after round closed
        assert event["attrs"] == {"accepted": True, "cost": None}
        assert run_start["attrs"] == {"circuit": "ami33"}
        timestamps = [r["ts"] for r in records]
        assert timestamps == sorted(timestamps)
        assert all(ts >= 0 for ts in timestamps)

    def test_init_truncates_stale_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("this is not json\n")
        tracer = Tracer(path)
        tracer.event("fresh", {})
        tracer.close()
        (record,) = iter_trace(path)
        assert record["name"] == "fresh"

    def test_buffered_flush_leaves_complete_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path, flush_every=3)
        tracer.event("a", {})
        tracer.event("b", {})
        assert path.read_text() == ""  # still buffered
        tracer.event("c", {})  # hits flush_every
        assert validate_trace_file(path) == 3
        tracer.event("d", {})
        # Simulate a crash: the never-flushed tail is lost, but the
        # file on disk is still a valid trace.
        assert validate_trace_file(path) == 3
        tracer.flush()
        assert validate_trace_file(path) == 4
        assert tracer.n_events == 4

    def test_hostile_attrs_never_raise(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.event("weird", {"tup": (1, 2), "obj": object()})
        tracer.close()
        (record,) = iter_trace(path)
        assert record["attrs"]["tup"] == [1, 2]
        assert "object" in record["attrs"]["obj"]  # repr fallback

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            Tracer(tmp_path / "t.jsonl", flush_every=0)

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("run", anything=1) as sid:
            NULL_TRACER.event("e", {"k": 1})
            NULL_TRACER.progress("p")
            NULL_TRACER.metric("m")
        assert sid == 0
        NULL_TRACER.flush()
        NULL_TRACER.close()
        assert NULL_TRACER.n_events == 0


class TestValidator:
    def test_accepts_conforming_record(self):
        record = _ok_record()
        assert validate_event(record) is record

    def test_rejects_non_object(self):
        with pytest.raises(TraceSchemaError, match="not a JSON object"):
            validate_event([1, 2, 3])

    def test_rejects_missing_and_extra_keys(self):
        record = _ok_record()
        del record["ts"]
        record["extra"] = 1
        with pytest.raises(TraceSchemaError, match="missing.*ts.*unexpected"):
            validate_event(record)

    def test_rejects_wrong_version(self):
        with pytest.raises(TraceSchemaError, match="version"):
            validate_event(_ok_record(v=99))

    def test_rejects_bad_timestamp(self):
        with pytest.raises(TraceSchemaError, match="ts"):
            validate_event(_ok_record(ts=-0.1))
        with pytest.raises(TraceSchemaError, match="ts"):
            validate_event(_ok_record(ts=True))

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceSchemaError, match="kind"):
            validate_event(_ok_record(kind="banana"))
        assert set(EVENT_KINDS) == {
            "span_start", "span_end", "event", "metric", "progress"
        }

    def test_rejects_empty_name(self):
        with pytest.raises(TraceSchemaError, match="name"):
            validate_event(_ok_record(name=""))

    def test_span_kinds_require_span_id(self):
        with pytest.raises(TraceSchemaError, match="span id"):
            validate_event(_ok_record(kind="span_start", span=None))
        # ...but point events at top level may be span-less.
        validate_event(_ok_record(span=None))

    def test_rejects_non_dict_attrs(self):
        with pytest.raises(TraceSchemaError, match="attrs"):
            validate_event(_ok_record(attrs=[1]))

    def test_rejects_non_json_attr_value(self):
        with pytest.raises(TraceSchemaError, match="not JSON-safe"):
            validate_event(_ok_record(attrs={"bad": object()}))

    def test_file_errors_name_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(_ok_record())
        path.write_text(good + "\n{not json\n")
        with pytest.raises(TraceSchemaError, match=":2:"):
            list(iter_trace(path))
        path.write_text(good + "\n" + json.dumps(_ok_record(kind="nope")) + "\n")
        with pytest.raises(TraceSchemaError, match=":2:.*kind"):
            validate_trace_file(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n" + json.dumps(_ok_record()) + "\n\n")
        assert validate_trace_file(path) == 1
