"""Tests for overflow metrics and rank correlation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect
from repro.routing import RoutingGrid, overflow_report
from repro.routing.overflow import rank_correlation

CHIP = Rect(0, 0, 100, 100)


class TestOverflowReport:
    def test_empty_grid(self):
        report = overflow_report(RoutingGrid(CHIP, 10.0, capacity=5))
        assert report.total_overflow == 0.0
        assert report.n_overflowed_edges == 0
        assert report.max_utilization == 0.0
        assert report.overflow_fraction == 0.0

    def test_overflow_counted(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=2)
        grid.add_h_edge(0, 0, 5.0)  # 3 over capacity
        grid.add_v_edge(1, 1, 2.0)  # exactly at capacity
        report = overflow_report(grid)
        assert report.total_overflow == pytest.approx(3.0)
        assert report.n_overflowed_edges == 1
        assert report.max_utilization == pytest.approx(2.5)

    def test_edge_count(self):
        grid = RoutingGrid(CHIP, 10.0)
        report = overflow_report(grid)
        assert report.n_edges == 9 * 10 + 10 * 9

    def test_single_cell_grid_no_edges(self):
        grid = RoutingGrid(Rect(0, 0, 5, 5), 10.0)
        report = overflow_report(grid)
        assert report.n_edges == 0


class TestRankCorrelation:
    def test_perfect_positive(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == (
            pytest.approx(1.0)
        )

    def test_perfect_negative(self):
        assert rank_correlation([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_ties_averaged(self):
        # Monotone with a tie: still strongly positive.
        value = rank_correlation([1, 2, 2, 3], [10, 20, 30, 40])
        assert 0.9 < value <= 1.0

    def test_invariant_to_monotone_transform(self):
        a = [3.0, 1.0, 4.0, 1.5, 9.0]
        b = [x**3 for x in a]
        assert rank_correlation(a, b) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [2])

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    def test_self_correlation_nonnegative(self, xs):
        value = rank_correlation(xs, xs)
        assert value == pytest.approx(1.0) or value == 0.0  # 0 iff constant

    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=2,
            max_size=40,
        )
    )
    def test_bounded_and_symmetric(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        r = rank_correlation(a, b)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert r == pytest.approx(rank_correlation(b, a))
