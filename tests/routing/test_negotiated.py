"""Tests for the negotiated (rip-up-and-reroute) router."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet
from repro.routing import GlobalRouter, NegotiatedRouter, RoutingGrid

CHIP = Rect(0, 0, 100, 100)


def net(x1, y1, x2, y2, name="n", weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


class TestConstruction:
    def test_invalid_params(self):
        grid = RoutingGrid(CHIP, 10.0)
        with pytest.raises(ValueError):
            NegotiatedRouter(grid, max_iterations=-1)
        with pytest.raises(ValueError):
            NegotiatedRouter(grid, present_weight=-0.1)


class TestRouting:
    def test_trivial_instance_converges_immediately(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=10)
        router = NegotiatedRouter(grid)
        result = router.route([net(5, 5, 55, 45)])
        assert result.converged
        assert result.iterations == 0
        assert result.total_overflow == 0.0
        assert len(result.routed) == 1

    def test_paths_connect_endpoints(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=2)
        nets = [net(5, 5, 95, 95, f"n{i}") for i in range(6)]
        result = NegotiatedRouter(grid).route(nets)
        for routed in result.routed:
            a = grid.cell_of(routed.net.p1.x, routed.net.p1.y)
            b = grid.cell_of(routed.net.p2.x, routed.net.p2.y)
            assert routed.cells[0] == a
            assert routed.cells[-1] == b

    def test_usage_matches_paths(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=1)
        nets = [net(5, 5, 75, 75, f"n{i}") for i in range(4)]
        result = NegotiatedRouter(grid).route(nets)
        total_edges = sum(len(r.cells) - 1 for r in result.routed)
        assert grid.usage_h.sum() + grid.usage_v.sum() == pytest.approx(
            total_edges
        )

    def test_negotiation_beats_one_pass_under_pressure(self):
        """With capacity 1 and several identical nets, negotiation must
        reach at-most-equal overflow vs the single-pass router."""
        nets = [net(5, 5, 95, 95, f"n{i}") for i in range(8)]

        grid_once = RoutingGrid(CHIP, 10.0, capacity=1)
        GlobalRouter(grid_once).route(nets)
        once_overflow = float(
            np.maximum(grid_once.usage_h - 1, 0).sum()
            + np.maximum(grid_once.usage_v - 1, 0).sum()
        )

        grid_neg = RoutingGrid(CHIP, 10.0, capacity=1)
        result = NegotiatedRouter(grid_neg, max_iterations=12).route(nets)
        assert result.total_overflow <= once_overflow + 1e-9

    def test_resolvable_conflict_resolved(self):
        """Two nets sharing one corridor but with room to spread must
        end with zero overflow."""
        grid = RoutingGrid(CHIP, 10.0, capacity=1)
        nets = [
            net(5, 5, 95, 55, "a"),
            net(5, 15, 95, 65, "b"),
        ]
        result = NegotiatedRouter(grid, max_iterations=10).route(nets)
        assert result.converged
        assert result.total_overflow == 0.0

    def test_zero_iterations_is_one_pass(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=1)
        nets = [net(5, 5, 95, 95, f"n{i}") for i in range(5)]
        result = NegotiatedRouter(grid, max_iterations=0).route(nets)
        assert result.iterations == 0
        assert len(result.routed) == 5


class TestWeightedNets:
    def test_weighted_usage_accounted(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=4)
        nets = [net(5, 5, 75, 5, "w", weight=3.0)]
        result = NegotiatedRouter(grid).route(nets)
        assert grid.usage_h[:7, 0].sum() == pytest.approx(21.0)
        assert result.converged  # 3 <= 4 capacity

    def test_heavy_net_triggers_negotiation_state(self):
        grid = RoutingGrid(CHIP, 10.0, capacity=2)
        nets = [net(5, 5, 75, 5, "w", weight=5.0)]  # degenerate corridor
        result = NegotiatedRouter(grid, max_iterations=3).route(nets)
        # A single straight-line net cannot spread: overflow persists
        # and is reported honestly.
        assert not result.converged
        assert result.total_overflow > 0
