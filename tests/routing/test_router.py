"""Tests for the congestion-aware global router."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet
from repro.routing import GlobalRouter, RoutingGrid, overflow_report

CHIP = Rect(0, 0, 100, 100)


def net(x1, y1, x2, y2, name="n", weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


def _is_monotone_path(cells):
    dxs = {c2[0] - c1[0] for c1, c2 in zip(cells, cells[1:])}
    dys = {c2[1] - c1[1] for c1, c2 in zip(cells, cells[1:])}
    return dxs <= {0, 1} or dxs <= {0, -1}, dys <= {0, 1} or dys <= {0, -1}


class TestRouteNet:
    @pytest.mark.parametrize("strategy", ["monotone", "lz"])
    def test_path_endpoints_and_length(self, strategy):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        router = GlobalRouter(grid, strategy=strategy)
        routed = router.route_net(net(5, 5, 75, 45))
        cells = routed.cells
        assert cells[0] == (0, 0)
        assert cells[-1] == (7, 4)
        # Shortest monotone path: |dx| + |dy| + 1 cells.
        assert len(cells) == 7 + 4 + 1

    @pytest.mark.parametrize("strategy", ["monotone", "lz"])
    def test_monotone_steps(self, strategy):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        router = GlobalRouter(grid, strategy=strategy)
        routed = router.route_net(net(85, 15, 15, 95))  # leftward net
        ok_x, ok_y = _is_monotone_path(routed.cells)
        assert ok_x and ok_y

    def test_same_cell_trivial(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        router = GlobalRouter(grid)
        routed = router.route_net(net(3, 3, 7, 6))
        assert routed.cells == ((0, 0),)
        assert grid.usage_h.sum() == 0.0

    def test_usage_committed(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        GlobalRouter(grid).route_net(net(5, 5, 45, 5))
        # Horizontal run commits 4 h-edges on row 0.
        assert grid.usage_h[:4, 0].sum() == pytest.approx(4.0)
        assert grid.usage_v.sum() == 0.0

    def test_weight_scales_usage(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        GlobalRouter(grid).route_net(net(5, 5, 45, 5, weight=2.5))
        assert grid.usage_h[:4, 0].sum() == pytest.approx(10.0)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            GlobalRouter(RoutingGrid(CHIP, 10.0), strategy="astar")


class TestCongestionAvoidance:
    def test_monotone_router_spreads_parallel_nets(self):
        grid = RoutingGrid(CHIP, cell_size=10.0, capacity=1)
        router = GlobalRouter(grid)
        # Five identical nets: each should pick a different staircase
        # to keep max edge utilization low.
        for i in range(5):
            router.route_net(net(5, 5, 95, 95, name=f"n{i}"))
        report = overflow_report(grid)
        # With 9x9 freedom, 5 nets can mostly avoid overlap.
        assert report.max_utilization <= 3.0
        assert grid.usage_h.max() < 5.0

    def test_bends_count(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        routed = GlobalRouter(grid, strategy="lz").route_net(net(5, 5, 55, 55))
        assert routed.n_bends >= 1


class TestRouteAll:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 99), st.integers(0, 99),
                st.integers(0, 99), st.integers(0, 99),
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from(["monotone", "lz"]),
    )
    def test_total_usage_equals_total_path_length(self, endpoints, strategy):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        router = GlobalRouter(grid, strategy=strategy)
        nets = [
            net(x1, y1, x2, y2, name=f"n{i}")
            for i, (x1, y1, x2, y2) in enumerate(endpoints)
        ]
        routed = router.route(nets)
        assert len(routed) == len(nets)
        total_edges = sum(len(r.cells) - 1 for r in routed)
        assert grid.usage_h.sum() + grid.usage_v.sum() == pytest.approx(
            total_edges
        )

    def test_shortest_first_order(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        router = GlobalRouter(grid)
        long_net = net(5, 5, 95, 95, name="long")
        short_net = net(5, 5, 15, 5, name="short")
        routed = router.route([long_net, short_net])
        assert routed[0].net.name == "short"
