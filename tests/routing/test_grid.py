"""Tests for the capacitated routing grid."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.routing import RoutingGrid

CHIP = Rect(0, 0, 100, 60)


class TestConstruction:
    def test_shape(self):
        grid = RoutingGrid(CHIP, cell_size=10.0, capacity=4)
        assert grid.n_cols == 10
        assert grid.n_rows == 6
        assert grid.usage_h.shape == (9, 6)
        assert grid.usage_v.shape == (10, 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RoutingGrid(CHIP, cell_size=0.0)
        with pytest.raises(ValueError):
            RoutingGrid(CHIP, cell_size=10.0, capacity=0)

    def test_single_cell_chip(self):
        grid = RoutingGrid(Rect(0, 0, 5, 5), cell_size=10.0)
        assert grid.n_cols == grid.n_rows == 1


class TestCells:
    def test_cell_of(self):
        grid = RoutingGrid(CHIP, cell_size=10.0)
        assert grid.cell_of(0, 0) == (0, 0)
        assert grid.cell_of(15, 25) == (1, 2)
        assert grid.cell_of(100, 60) == (9, 5)  # clamped boundary

    def test_usage_accumulation(self):
        grid = RoutingGrid(CHIP, cell_size=10.0, capacity=2)
        grid.add_h_edge(3, 2, 1.5)
        grid.add_v_edge(0, 0)
        assert grid.h_edge_usage(3, 2) == 1.5
        assert grid.v_edge_usage(0, 0) == 1.0
        grid.reset()
        assert grid.usage_h.sum() == 0.0
        assert grid.usage_v.sum() == 0.0


class TestUtilization:
    def test_cell_utilization_shape_and_range(self):
        grid = RoutingGrid(CHIP, cell_size=10.0, capacity=10)
        grid.add_h_edge(0, 0, 5.0)
        util = grid.cell_utilization()
        assert util.shape == (10, 6)
        assert util.max() <= 1.0
        # The loaded edge contributes to both endpoint cells.
        assert util[0, 0] > 0
        assert util[1, 0] > 0
        assert util[5, 5] == 0.0

    def test_uniform_load_uniform_utilization(self):
        grid = RoutingGrid(CHIP, cell_size=10.0, capacity=1)
        grid.usage_h[:] = 1.0
        grid.usage_v[:] = 1.0
        util = grid.cell_utilization()
        assert np.allclose(util, 1.0)
