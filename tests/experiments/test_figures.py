"""Tests for the Figure 8 / Figure 3-4 data generators."""

import pytest

from repro.experiments.figures import (
    figure8_default_cases,
    figure8_series,
    grid_sensitivity,
    motivation_nets,
)


class TestFigure8:
    def test_case_b_all_valid_and_tight(self):
        case_b, _ = figure8_default_cases()
        assert [p.x for p in case_b] == list(range(10, 21))
        for p in case_b:
            assert p.approx is not None
            assert p.deviation < 0.01

    def test_case_d_error_grid_has_no_value(self):
        _, case_d = figure8_default_cases()
        last = case_d[-1]
        assert last.x == 30
        assert last.approx is None
        assert last.deviation is None
        # The exact value exists everywhere.
        assert last.exact > 0

    def test_case_d_valid_region_bounded_deviation(self):
        _, case_d = figure8_default_cases()
        for p in case_d[:-1]:
            assert p.deviation is not None
            assert p.deviation < 0.05

    def test_custom_series(self):
        series = figure8_series(10, 10, 5, [2, 3, 4])
        assert len(series) == 3
        assert all(p.exact >= 0 for p in series)


class TestMotivation:
    def test_net_sets(self):
        chip, nets3 = motivation_nets("figure3")
        assert len(nets3) == 5
        _, nets4 = motivation_nets("figure4")
        assert len(nets4) == 6
        for n in nets3 + nets4:
            assert chip.contains_point(n.p1)
            assert chip.contains_point(n.p2)

    def test_unknown_case(self):
        with pytest.raises(ValueError):
            motivation_nets("figure99")

    def test_grid_sensitivity_changes_with_pitch(self):
        """The Figure 3/4 point: the same nets scored on different
        fixed grids give materially different congestion pictures."""
        chip, nets = motivation_nets("figure4")
        coarse = grid_sensitivity(chip, nets, (6, 4))
        fine = grid_sensitivity(chip, nets, (12, 8))
        assert coarse.n_cols == 6
        assert fine.n_cols == 12
        # Scores differ by a nontrivial factor between pitches.
        ratio = coarse.score / fine.score
        assert ratio > 1.2 or ratio < 0.8

    def test_fine_grid_wastes_cells(self):
        """Figure 4(c): on the fine grid, more than half the cells see
        at most one net -- the waste motivating the Irregular-Grid."""
        chip, nets = motivation_nets("figure4")
        fine = grid_sensitivity(chip, nets, (12, 8))
        assert fine.single_net_cell_fraction > 0.5

    def test_invalid_shape(self):
        chip, nets = motivation_nets("figure4")
        with pytest.raises(ValueError):
            grid_sensitivity(chip, nets, (0, 4))
