"""End-to-end tests for Experiments 1-3 on tiny circuits.

These use a minimal profile and a small synthetic circuit so the whole
pipeline (anneal -> judge -> aggregate -> format) runs in seconds; the
real MCNC-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments.config import ExperimentProfile
from repro.experiments.exp1 import format_experiment1, run_circuit
from repro.experiments.exp2 import format_experiment2, run_experiment2
from repro.experiments.exp3 import format_experiment3, run_experiment3
from repro.netlist import clustered_circuit

TINY = ExperimentProfile(
    name="tiny",
    n_seeds=2,
    moves_factor=1,
    cooling_rate=0.5,
    freeze_ratio=0.1,
    max_steps=4,
)


@pytest.fixture(scope="module")
def circuit():
    return clustered_circuit(8, 16, n_clusters=2, seed=3, name="ami33")
    # named ami33 so circuit_config lookups resolve


class TestExperiment1:
    def test_row_structure(self, circuit):
        row = run_circuit(
            circuit, ir_grid_size=60.0, judging_grid_size=30.0, profile=TINY
        )
        assert row.baseline.best.judging_cost > 0
        assert row.congestion_aware.best.congestion_cost > 0
        # Improvement percentages are finite numbers.
        assert isinstance(row.avg_judging_improvement_pct, float)
        assert abs(row.avg_area_improvement_pct) < 100.0

    def test_formatting(self, circuit):
        row = run_circuit(
            circuit, ir_grid_size=60.0, judging_grid_size=30.0, profile=TINY
        )
        text = format_experiment1({"tiny": row})
        assert "Table 1" in text
        assert "Table 2" in text
        assert "Table 3" in text
        assert "tiny" in text


class TestExperiment2:
    def test_series_aligned(self, circuit):
        result = run_experiment2(
            "ami33", profile=TINY, seed=1, netlist=circuit
        )
        n = result.n_snapshots
        assert n >= 2
        assert len(result.fine_judging_costs) == n
        assert len(result.coarse_judging_costs) == n
        assert all(v >= 0 for v in result.ir_costs)

    def test_correlations_bounded(self, circuit):
        result = run_experiment2("ami33", profile=TINY, seed=1, netlist=circuit)
        assert -1.0 <= result.corr_model_vs_fine <= 1.0
        assert -1.0 <= result.corr_model_vs_coarse <= 1.0
        assert isinstance(result.model_tracks_better, bool)

    def test_formatting(self, circuit):
        result = run_experiment2("ami33", profile=TINY, seed=1, netlist=circuit)
        text = format_experiment2(result)
        assert "Figure 9" in text
        assert "rank corr" in text

    def test_snapshot_subsampling(self, circuit):
        result = run_experiment2(
            "ami33", profile=TINY, seed=1, max_snapshots=3, netlist=circuit
        )
        assert result.n_snapshots <= 3


class TestExperiment3:
    def test_rows(self, circuit):
        rows = run_experiment3(
            "ami33",
            profile=TINY,
            fixed_grid_sizes=(120.0,),
            netlist=circuit,
        )
        kinds = [r.model_kind for r in rows]
        assert kinds == ["irgrid", "fixed"]
        assert rows[0].n_grids_avg > 0
        assert rows[1].n_grids_avg > 0
        for r in rows:
            assert r.aggregate.avg_judging_cost > 0

    def test_formatting(self, circuit):
        rows = run_experiment3(
            "ami33",
            profile=TINY,
            fixed_grid_sizes=(120.0,),
            netlist=circuit,
        )
        text = format_experiment3(rows, "tiny")
        assert "Tables 4-5" in text
        assert "faster" in text


class TestExperiment1ConfidenceIntervals:
    def test_ci_lines_rendered(self, circuit):
        row = run_circuit(
            circuit, ir_grid_size=60.0, judging_grid_size=30.0, profile=TINY
        )
        assert len(row.baseline_judging) == TINY.n_seeds
        ci = row.judging_improvement_ci()
        assert ci is not None
        assert ci.lo <= ci.mean <= ci.hi
        text = format_experiment1({"tiny": row})
        assert "Paired bootstrap" in text
        assert "tiny:" in text

    def test_ci_absent_without_per_seed_data(self):
        from repro.experiments.exp1 import Experiment1Row
        from tests.test_cli_experiments import _fake_aggregate

        row = Experiment1Row(
            circuit="x",
            baseline=_fake_aggregate(),
            congestion_aware=_fake_aggregate(),
        )
        assert row.judging_improvement_ci() is None
        text = format_experiment1({"x": row})
        assert "Paired bootstrap" not in text
