"""Tests for the experiment harness (configs, runner, tables)."""

import os
from unittest import mock

import pytest

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel
from repro.experiments import (
    PROFILES,
    RunRecord,
    active_profile,
    aggregate,
    circuit_config,
    format_table,
    run_once,
    run_seeds,
)
from repro.experiments.config import ExperimentProfile
from repro.netlist import random_circuit

TINY = ExperimentProfile(
    name="tiny",
    n_seeds=2,
    moves_factor=1,
    cooling_rate=0.5,
    freeze_ratio=0.1,
    max_steps=4,
)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"smoke", "quick", "paper"}
        assert PROFILES["paper"].n_seeds == 20

    def test_default_profile_smoke(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_PROFILE", None)
            os.environ.pop("REPRO_SEEDS", None)
            assert active_profile().name == "smoke"

    def test_env_selection(self):
        with mock.patch.dict(os.environ, {"REPRO_PROFILE": "quick"}):
            assert active_profile().name == "quick"

    def test_seed_override(self):
        with mock.patch.dict(
            os.environ, {"REPRO_PROFILE": "smoke", "REPRO_SEEDS": "7"}
        ):
            assert active_profile().n_seeds == 7

    def test_unknown_profile(self):
        with mock.patch.dict(os.environ, {"REPRO_PROFILE": "bogus"}):
            with pytest.raises(KeyError):
                active_profile()

    def test_schedule_and_moves(self):
        p = PROFILES["smoke"]
        assert p.schedule().cooling_rate == p.cooling_rate
        assert p.moves_per_temperature(33) == p.moves_factor * 33


class TestCircuitConfig:
    def test_apte_coarser_grid(self):
        assert circuit_config("apte").ir_grid_size == 60.0
        assert circuit_config("ami33").ir_grid_size == 30.0

    def test_judging_pitch(self):
        assert circuit_config("hp").judging_grid_size == 10.0

    def test_unknown(self):
        with pytest.raises(KeyError):
            circuit_config("zz")


class TestRunner:
    def setup_method(self):
        self.netlist = random_circuit(6, 10, seed=0, name="tiny6")

    def _objective(self):
        return FloorplanObjective(
            self.netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(60.0),
        )

    def test_run_once_record(self):
        record = run_once(
            self.netlist,
            self._objective(),
            seed=0,
            profile=TINY,
            judging_grid_size=30.0,
        )
        assert record.circuit == "tiny6"
        assert record.area_um2 > 0
        assert record.area_mm2 == pytest.approx(record.area_um2 / 1e6)
        assert record.judging_cost > 0
        assert record.n_irgrids > 0
        assert record.runtime_seconds > 0
        record.floorplan.validate()

    def test_run_seeds_count_and_determinism(self):
        records = run_seeds(
            self.netlist, self._objective, profile=TINY, judging_grid_size=30.0
        )
        assert len(records) == TINY.n_seeds
        assert [r.seed for r in records] == [0, 1]
        again = run_seeds(
            self.netlist, self._objective, profile=TINY, judging_grid_size=30.0
        )
        assert [r.cost for r in records] == [r.cost for r in again]

    def test_aggregate(self):
        records = run_seeds(
            self.netlist, self._objective, profile=TINY, judging_grid_size=30.0
        )
        agg = aggregate(records)
        assert agg.best.cost == min(r.cost for r in records)
        assert agg.avg_area_mm2 == pytest.approx(
            sum(r.area_mm2 for r in records) / len(records)
        )

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_number_formatting(self):
        text = format_table(["v"], [[123456789.0], [0.00001234], [5]])
        assert "1.235e+08" in text
        assert "1.234e-05" in text
        assert " 5" in text or "5" in text
