"""Tests for bootstrap confidence intervals."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.statistics import (
    BootstrapCI,
    bootstrap_ci,
    paired_bootstrap_delta,
)


class TestBootstrapCI:
    def test_mean_and_ordering(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        assert ci.lo <= ci.mean <= ci.hi

    def test_deterministic(self):
        data = [0.3, 1.7, 2.2, 0.9]
        a = bootstrap_ci(data, seed=5)
        b = bootstrap_ci(data, seed=5)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_single_value_degenerate(self):
        ci = bootstrap_ci([42.0])
        assert ci.lo == ci.hi == ci.mean == 42.0

    def test_tight_data_tight_interval(self):
        ci = bootstrap_ci([10.0, 10.1, 9.9, 10.05, 9.95])
        assert ci.halfwidth < 0.2

    def test_higher_confidence_wider(self):
        data = [random.Random(1).gauss(0, 1) for _ in range(20)]
        narrow = bootstrap_ci(data, confidence=0.5, seed=2)
        wide = bootstrap_ci(data, confidence=0.99, seed=2)
        assert wide.halfwidth >= narrow.halfwidth

    def test_excludes_zero(self):
        assert bootstrap_ci([5.0, 6.0, 7.0]).excludes_zero()
        assert not bootstrap_ci([-1.0, 1.0, -0.5, 0.5]).excludes_zero()

    def test_str_format(self):
        s = str(bootstrap_ci([1.0, 2.0], confidence=0.9))
        assert "@90%" in s

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=30),
        st.integers(0, 100),
    )
    def test_interval_contains_sample_mean(self, data, seed):
        ci = bootstrap_ci(data, seed=seed, n_resamples=500)
        assert ci.lo - 1e-9 <= ci.mean <= ci.hi + 1e-9


class TestPairedDelta:
    def test_sign_convention(self):
        # Treatment reduces the metric -> positive delta.
        baseline = [10.0, 12.0, 11.0, 13.0]
        treatment = [9.0, 10.5, 10.0, 11.5]
        ci = paired_bootstrap_delta(baseline, treatment)
        assert ci.mean > 0
        assert ci.excludes_zero()

    def test_no_effect_straddles_zero(self):
        rng = random.Random(0)
        baseline = [rng.gauss(5, 1) for _ in range(15)]
        treatment = [b + rng.gauss(0, 0.5) for b in baseline]
        ci = paired_bootstrap_delta(baseline, treatment, confidence=0.95)
        assert ci.lo < 0.5 and ci.hi > -0.5  # roughly centered near 0

    def test_pairing_beats_unpaired_variance(self):
        """With huge seed-to-seed variance and a small consistent
        effect, the paired interval must resolve the effect."""
        rng = random.Random(3)
        base = [rng.gauss(100, 30) for _ in range(10)]
        treat = [b - 2.0 + rng.gauss(0, 0.2) for b in base]
        paired = paired_bootstrap_delta(base, treat, confidence=0.9)
        assert paired.excludes_zero()
        assert paired.mean == pytest.approx(2.0, abs=0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_bootstrap_delta([1.0], [1.0, 2.0])
