"""Tests for the sequence-pair representation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import SequencePair, pack_sequence_pair
from repro.netlist import Module


def modules(n, seed=0):
    rng = random.Random(seed)
    return {
        f"m{i}": Module(f"m{i}", rng.randint(1, 30), rng.randint(1, 30))
        for i in range(n)
    }


class TestConstruction:
    def test_valid(self):
        sp = SequencePair(("a", "b"), ("b", "a"))
        assert sp.gamma_plus == ("a", "b")

    def test_mismatched_sets_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("a", "b"), ("a", "c"))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("a", "a"), ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SequencePair((), ())

    def test_unknown_rotation_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("a",), ("a",), frozenset({"zz"}))

    def test_initial_shuffles(self):
        a = SequencePair.initial(list("abcdef"), random.Random(1))
        b = SequencePair.initial(list("abcdef"), random.Random(2))
        assert a != b


class TestRelations:
    def test_both_orders_means_left_of(self):
        # a before b in both: a left of b.
        sp = SequencePair(("a", "b"), ("a", "b"))
        fp = pack_sequence_pair(sp, modules_fixed())
        ra, rb = fp.placement("a"), fp.placement("b")
        assert ra.x_hi <= rb.x_lo + 1e-9

    def test_opposite_orders_means_below(self):
        # a after b in gamma_plus, before in gamma_minus: a below b.
        sp = SequencePair(("b", "a"), ("a", "b"))
        fp = pack_sequence_pair(sp, modules_fixed())
        ra, rb = fp.placement("a"), fp.placement("b")
        assert ra.y_hi <= rb.y_lo + 1e-9

    def test_rotation_flag(self):
        mods = modules_fixed()
        sp = SequencePair(("a", "b"), ("a", "b"), frozenset({"a"}))
        fp = pack_sequence_pair(sp, mods)
        ra = fp.placement("a")
        assert (ra.width, ra.height) == (mods["a"].height, mods["a"].width)

    def test_unknown_module(self):
        sp = SequencePair(("zz",), ("zz",))
        with pytest.raises(KeyError):
            pack_sequence_pair(sp, modules_fixed())


def modules_fixed():
    return {"a": Module("a", 4, 2), "b": Module("b", 3, 3)}


class TestMoves:
    def test_moves_preserve_permutation_invariants(self):
        rng = random.Random(7)
        sp = SequencePair.initial(list("abcdefgh"), rng)
        for _ in range(100):
            sp = sp.random_neighbor(rng)
            assert sorted(sp.gamma_plus) == sorted("abcdefgh")
            assert sorted(sp.gamma_minus) == sorted("abcdefgh")
            assert set(sp.rotated) <= set("abcdefgh")

    def test_swap_in_both_keeps_alignment(self):
        rng = random.Random(3)
        sp = SequencePair.initial(list("abcd"), rng)
        moved = sp.swap_in_both(rng)
        # Relative pair relations of untouched modules unchanged: check
        # permutation property only (full geometric check below).
        assert sorted(moved.gamma_plus) == sorted(sp.gamma_plus)


class TestPacking:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 9), st.integers(0, 1000))
    def test_packings_never_overlap(self, n, seed):
        rng = random.Random(seed)
        mods = modules(n, seed)
        sp = SequencePair.initial(list(mods), rng)
        for _ in range(10):
            sp = sp.random_neighbor(rng)
        fp = pack_sequence_pair(sp, mods)
        fp.validate()
        assert set(fp.module_names) == set(mods)

    def test_single_module(self):
        mods = {"a": Module("a", 5, 7)}
        fp = pack_sequence_pair(SequencePair(("a",), ("a",)), mods)
        assert fp.chip.area == 35

    def test_chain_is_row(self):
        mods = {n: Module(n, 2, 3) for n in "abc"}
        sp = SequencePair(("a", "b", "c"), ("a", "b", "c"))
        fp = pack_sequence_pair(sp, mods)
        assert fp.chip.width == 6
        assert fp.chip.height == 3

    def test_reverse_chain_is_column(self):
        mods = {n: Module(n, 2, 3) for n in "abc"}
        sp = SequencePair(("c", "b", "a"), ("a", "b", "c"))
        fp = pack_sequence_pair(sp, mods)
        assert fp.chip.width == 2
        assert fp.chip.height == 9
