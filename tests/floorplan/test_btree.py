"""Tests for the B*-tree representation and contour packing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import BStarTree, pack_btree
from repro.floorplan.btree import _Node
from repro.netlist import Module


def modules(n, seed=0):
    rng = random.Random(seed)
    return {
        f"m{i}": Module(f"m{i}", rng.randint(1, 30), rng.randint(1, 30))
        for i in range(n)
    }


class TestConstruction:
    def test_initial_chain(self):
        t = BStarTree.initial(["a", "b", "c"])
        assert t.root == "a"
        assert t.nodes["a"].left == "b"
        assert t.nodes["b"].left == "c"
        assert t.nodes["c"].left is None

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            BStarTree("zz", {"a": _Node()})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            BStarTree("a", {"a": _Node(left="b"), "b": _Node(left="a")})

    def test_unreachable_rejected(self):
        with pytest.raises(ValueError):
            BStarTree("a", {"a": _Node(), "orphan": _Node()})

    def test_unknown_rotation_rejected(self):
        with pytest.raises(ValueError):
            BStarTree("a", {"a": _Node()}, frozenset({"zz"}))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BStarTree.initial([])


class TestPacking:
    def test_left_chain_is_row(self):
        mods = {n: Module(n, 2, 3) for n in "abc"}
        fp = pack_btree(BStarTree.initial(["a", "b", "c"]), mods)
        assert fp.chip.width == 6
        assert fp.chip.height == 3
        assert fp.placement("b").x_lo == 2

    def test_right_chain_is_column(self):
        mods = {n: Module(n, 2, 3) for n in "abc"}
        nodes = {
            "a": _Node(right="b"),
            "b": _Node(right="c"),
            "c": _Node(),
        }
        fp = pack_btree(BStarTree("a", nodes), mods)
        assert fp.chip.width == 2
        assert fp.chip.height == 9

    def test_right_child_drops_onto_contour(self):
        # A wide parent with a short left neighbour: the right child
        # rests on the parent's top, not floating.
        mods = {
            "base": Module("base", 6, 2),
            "cap": Module("cap", 3, 1),
        }
        nodes = {"base": _Node(right="cap"), "cap": _Node()}
        fp = pack_btree(BStarTree("base", nodes), mods)
        assert fp.placement("cap").y_lo == pytest.approx(2.0)
        assert fp.placement("cap").x_lo == 0.0

    def test_left_child_clears_taller_contour(self):
        # Module to the right must sit on the floor if the contour
        # there is flat, even when the parent is tall.
        mods = {"tall": Module("tall", 2, 9), "flat": Module("flat", 4, 1)}
        nodes = {"tall": _Node(left="flat"), "flat": _Node()}
        fp = pack_btree(BStarTree("tall", nodes), mods)
        assert fp.placement("flat").x_lo == 2.0
        assert fp.placement("flat").y_lo == 0.0

    def test_rotation_applied(self):
        mods = {"a": Module("a", 6, 2)}
        t = BStarTree("a", {"a": _Node()}, frozenset({"a"}))
        fp = pack_btree(t, mods)
        assert fp.placement("a").width == 2
        assert fp.placement("a").height == 6

    def test_unknown_module(self):
        t = BStarTree.initial(["zz"])
        with pytest.raises(KeyError):
            pack_btree(t, modules(2))


class TestMoves:
    def test_moves_preserve_node_set(self):
        rng = random.Random(5)
        mods = modules(10)
        t = BStarTree.initial(list(mods), rng)
        for _ in range(200):
            t = t.random_neighbor(rng)
            assert set(t.nodes) == set(mods)

    def test_swap_changes_packing(self):
        rng = random.Random(1)
        mods = modules(6, seed=2)
        t = BStarTree.initial(list(mods), rng)
        swapped = t.swap_nodes(rng)
        a = pack_btree(t, mods).placements
        b = pack_btree(swapped, mods).placements
        assert a != b

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 2000), st.integers(0, 60))
    def test_random_trees_pack_without_overlap(self, n, seed, n_moves):
        rng = random.Random(seed)
        mods = modules(n, seed)
        t = BStarTree.initial(list(mods), rng)
        for _ in range(n_moves):
            t = t.random_neighbor(rng)
        fp = pack_btree(t, mods)
        fp.validate()
        assert set(fp.module_names) == set(mods)
        # Compaction invariant: the packing touches both axes' origins.
        assert min(r.x_lo for r in fp.placements.values()) == 0.0
        assert min(r.y_lo for r in fp.placements.values()) == 0.0
