"""Tests for the Floorplan container."""

import pytest

from repro.floorplan import Floorplan
from repro.geometry import Point, Rect


class TestConstruction:
    def test_bbox_chip(self):
        fp = Floorplan(
            {"a": Rect(0, 0, 2, 2), "b": Rect(2, 0, 5, 3)}
        )
        assert fp.chip == Rect(0, 0, 5, 3)

    def test_explicit_chip(self):
        fp = Floorplan({"a": Rect(1, 1, 2, 2)}, chip=Rect(0, 0, 10, 10))
        assert fp.chip.area == 100

    def test_chip_too_small_rejected(self):
        with pytest.raises(ValueError):
            Floorplan({"a": Rect(0, 0, 5, 5)}, chip=Rect(0, 0, 3, 3))

    def test_chip_rounding_slack_absorbed(self):
        # A bbox exceeding the chip by float dust grows the chip.
        fp = Floorplan(
            {"a": Rect(0, 0, 5, 5 + 1e-12)}, chip=Rect(0, 0, 5, 5)
        )
        assert fp.chip.y_hi >= 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Floorplan({})


class TestMeasures:
    def test_areas_and_whitespace(self):
        fp = Floorplan(
            {"a": Rect(0, 0, 2, 2), "b": Rect(2, 2, 4, 4)}
        )
        assert fp.area == 16
        assert fp.module_area == 8
        assert fp.whitespace_fraction == pytest.approx(0.5)

    def test_center(self):
        fp = Floorplan({"a": Rect(0, 0, 4, 2)})
        assert fp.center("a") == Point(2, 1)
        with pytest.raises(KeyError):
            fp.center("zz")


class TestValidation:
    def test_overlap_detected(self):
        fp = Floorplan(
            {"a": Rect(0, 0, 3, 3), "b": Rect(2, 2, 5, 5)}
        )
        assert list(fp.overlapping_pairs()) == [("a", "b")]
        with pytest.raises(ValueError, match="overlapping"):
            fp.validate()

    def test_touching_edges_not_overlap(self):
        fp = Floorplan(
            {"a": Rect(0, 0, 3, 3), "b": Rect(3, 0, 6, 3)}
        )
        fp.validate()

    def test_repr_mentions_whitespace(self):
        fp = Floorplan({"a": Rect(0, 0, 1, 1)})
        assert "whitespace" in repr(fp)
