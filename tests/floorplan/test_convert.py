"""Floorplan -> representation converters (the inverse of realize).

Each converter must return a *valid* state for its representation, for
any placement -- conversion is the migration path between portfolio
arms, so a placement produced by one representation must always be
expressible in another, even if the re-packing is looser.  The polish
converter additionally guarantees an exact-area round-trip: a slicing
placement converts to an expression that realizes the same bounding
box.
"""

import random

import pytest

from repro.engine.representation import make_representation
from repro.floorplan import PolishExpression
from repro.floorplan.btree import BStarTree
from repro.floorplan.convert import (
    btree_from_floorplan,
    polish_from_floorplan,
    sequence_pair_from_floorplan,
)
from repro.floorplan.sequence_pair import SequencePair
from repro.netlist import random_circuit

REPRESENTATIONS = ("polish", "sp", "btree")
CONVERTERS = {
    "polish": polish_from_floorplan,
    "sp": sequence_pair_from_floorplan,
    "btree": btree_from_floorplan,
}


@pytest.fixture(scope="module")
def netlist():
    return random_circuit(12, 30, seed=5)


@pytest.fixture(scope="module")
def modules(netlist):
    return {m.name: m for m in netlist.modules}


def _walked_floorplan(netlist, source, moves=50, seed=11):
    """A floorplan from ``source`` after a random neighbor walk, so the
    converters see real mid-anneal placements, not just initials."""
    rep = make_representation(source, netlist)
    rng = random.Random(seed)
    state = rep.initial(rng)
    for _ in range(moves):
        state = rep.neighbor(state, rng)
    return rep.realize(state), state


class TestAllPairs:
    """Every (source representation, converter) pair yields a valid,
    fully-populated state."""

    @pytest.mark.parametrize("source", REPRESENTATIONS)
    @pytest.mark.parametrize("target", REPRESENTATIONS)
    def test_conversion_is_valid_and_complete(
        self, netlist, modules, source, target
    ):
        floorplan, _ = _walked_floorplan(netlist, source)
        converted = CONVERTERS[target](floorplan, modules)
        target_rep = make_representation(target, netlist)
        packed = target_rep.realize(converted)
        assert set(packed.placements) == set(modules)
        # Placements must be physical: no overlap means total module
        # area fits inside the repacked bounding box.
        module_area = sum(m.area for m in modules.values())
        assert packed.area >= module_area

    @pytest.mark.parametrize("source", REPRESENTATIONS)
    @pytest.mark.parametrize("target", REPRESENTATIONS)
    def test_conversion_is_deterministic(
        self, netlist, modules, source, target
    ):
        floorplan, _ = _walked_floorplan(netlist, source)
        first = CONVERTERS[target](floorplan, modules)
        second = CONVERTERS[target](floorplan, modules)
        target_rep = make_representation(target, netlist)
        assert (
            target_rep.realize(first).placements
            == target_rep.realize(second).placements
        )

    @pytest.mark.parametrize("target", REPRESENTATIONS)
    def test_conversion_does_not_blow_up_area(self, netlist, modules, target):
        """Migrated elites must stay competitive: repacking a walked
        placement may not more than double its bounding box."""
        for source in REPRESENTATIONS:
            floorplan, _ = _walked_floorplan(netlist, source)
            converted = CONVERTERS[target](floorplan, modules)
            packed = make_representation(target, netlist).realize(converted)
            assert packed.area <= 2.0 * floorplan.area


class TestPolishRoundTrip:
    def test_slicing_placement_round_trips_exactly(self, netlist, modules):
        """polish -> floorplan -> polish preserves the bounding box:
        a slicing placement is fully guillotine-cuttable."""
        rep = make_representation("polish", netlist)
        floorplan, _ = _walked_floorplan(netlist, "polish", moves=80)
        expr = polish_from_floorplan(floorplan, modules)
        assert isinstance(expr, PolishExpression)
        repacked = rep.realize(expr)
        assert repacked.area == pytest.approx(floorplan.area)

        def extents(fp):
            rects = fp.placements.values()
            return (
                max(r.x_hi for r in rects),
                max(r.y_hi for r in rects),
            )

        assert extents(repacked) == pytest.approx(extents(floorplan))

    def test_result_is_normalized(self, netlist, modules):
        """PolishExpression's constructor rejects non-normalized token
        streams, so surviving construction from every source proves
        normalization; spot-check the invariant anyway."""
        for source in REPRESENTATIONS:
            floorplan, _ = _walked_floorplan(netlist, source)
            expr = polish_from_floorplan(floorplan, modules)
            tokens = list(expr.tokens)
            for a, b in zip(tokens, tokens[1:]):
                assert not (a in ("+", "*") and a == b)

    def test_rotation_recovered(self, netlist, modules):
        """A rotated module in the placement stays rotated after
        conversion (the round trip keeps the placed outline)."""
        floorplan, state = _walked_floorplan(netlist, "polish", moves=120)
        rects = floorplan.placements
        expr = polish_from_floorplan(floorplan, modules)
        repacked = make_representation("polish", netlist).realize(expr)
        for name, rect in rects.items():
            placed = repacked.placements[name]
            assert (placed.x_hi - placed.x_lo) == pytest.approx(
                rect.x_hi - rect.x_lo
            )
            assert (placed.y_hi - placed.y_lo) == pytest.approx(
                rect.y_hi - rect.y_lo
            )


class TestTypedResults:
    def test_types(self, netlist, modules):
        floorplan, _ = _walked_floorplan(netlist, "sp")
        assert isinstance(
            polish_from_floorplan(floorplan, modules),
            PolishExpression,
        )
        assert isinstance(
            sequence_pair_from_floorplan(floorplan, modules),
            SequencePair,
        )
        assert isinstance(
            btree_from_floorplan(floorplan, modules), BStarTree
        )


class TestRepresentationHook:
    """The converters are wired onto Representation.from_floorplan --
    the hook portfolio migration calls."""

    @pytest.mark.parametrize("name", REPRESENTATIONS)
    def test_hook_present_and_bound(self, netlist, modules, name):
        rep = make_representation(name, netlist)
        assert rep.from_floorplan is not None
        floorplan, _ = _walked_floorplan(netlist, "btree")
        state = rep.from_floorplan(floorplan)
        packed = rep.realize(state)
        assert set(packed.placements) == set(modules)
