"""Tests for shape lists and slicing-tree packing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import evaluate_polish, initial_expression
from repro.floorplan.packing import Shape, ShapeList, combine, leaf_shapes
from repro.floorplan.polish import OP_ABOVE, OP_BESIDE, PolishExpression
from repro.netlist import Module


class TestShapeList:
    def test_prunes_dominated(self):
        sl = ShapeList(
            [Shape(4, 4), Shape(2, 6), Shape(3, 5), Shape(4, 5), Shape(6, 2)]
        )
        # (4,5) dominated by (4,4); the rest form a staircase.
        dims = [(s.width, s.height) for s in sl]
        assert dims == [(2, 6), (3, 5), (4, 4), (6, 2)]

    def test_widths_increase_heights_decrease(self):
        sl = ShapeList([Shape(1, 9), Shape(2, 5), Shape(2, 4), Shape(9, 1)])
        widths = [s.width for s in sl]
        heights = [s.height for s in sl]
        assert widths == sorted(widths)
        assert heights == sorted(heights, reverse=True)

    def test_min_area(self):
        sl = ShapeList([Shape(2, 6), Shape(3, 5), Shape(4, 4)])
        assert sl.min_area() == 12
        assert sl[sl.min_area_index()].width == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShapeList([])


class TestLeafShapes:
    def test_rotatable_two_shapes(self):
        sl = leaf_shapes(30, 20)
        assert len(sl) == 2
        assert {(s.width, s.height) for s in sl} == {(30, 20), (20, 30)}
        assert {s.rotated for s in sl} == {False, True}

    def test_square_one_shape(self):
        assert len(leaf_shapes(10, 10)) == 1

    def test_rotation_disabled(self):
        assert len(leaf_shapes(30, 20, allow_rotation=False)) == 1


class TestCombine:
    def test_beside_adds_widths(self):
        left = leaf_shapes(2, 2)
        right = leaf_shapes(3, 1, allow_rotation=False)
        combined = combine(OP_BESIDE, left, right)
        assert [(s.width, s.height) for s in combined] == [(5, 2)]

    def test_stack_adds_heights(self):
        left = leaf_shapes(2, 2)
        right = leaf_shapes(2, 3, allow_rotation=False)
        combined = combine(OP_ABOVE, left, right)
        # Right is 2x3; stacking gives (2,5); rotation of right... right
        # fixed, so one candidate.
        assert [(s.width, s.height) for s in combined] == [(2, 5)]

    def test_back_pointers_realizable(self):
        left = leaf_shapes(4, 1)
        right = leaf_shapes(1, 4)
        combined = combine(OP_BESIDE, left, right)
        for s in combined:
            ls = left[s.left_index]
            rs = right[s.right_index]
            assert s.width == ls.width + rs.width
            assert s.height == max(ls.height, rs.height)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            combine("?", leaf_shapes(1, 1), leaf_shapes(1, 1))

    def test_size_bound(self):
        # |combined| <= |L| + |R| - 1 (Stockmeyer).
        left = ShapeList([Shape(1, 10), Shape(2, 6), Shape(5, 3), Shape(9, 1)])
        right = ShapeList([Shape(1, 7), Shape(3, 4), Shape(8, 2)])
        for op in (OP_ABOVE, OP_BESIDE):
            assert len(combine(op, left, right)) <= len(left) + len(right) - 1

    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 20)),
            min_size=1,
            max_size=4,
        ),
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 20)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_combined_contains_optimum_of_exhaustive(self, dims_l, dims_r):
        left = ShapeList([Shape(w, h) for w, h in dims_l])
        right = ShapeList([Shape(w, h) for w, h in dims_r])
        combined = combine(OP_BESIDE, left, right)
        best = min(
            (ls.width + rs.width) * max(ls.height, rs.height)
            for ls in left
            for rs in right
        )
        assert combined.min_area() <= best + 1e-9


class TestEvaluatePolish:
    MODULES = {
        "a": Module("a", 4, 6),
        "b": Module("b", 3, 7),
        "c": Module("c", 2, 2),
        "d": Module("d", 5, 5),
    }

    def test_two_module_beside(self):
        fp = evaluate_polish(
            PolishExpression(["a", "b", "*"]), self.MODULES, allow_rotation=False
        )
        assert fp.chip.width == 7
        assert fp.chip.height == 7
        fp.validate()

    def test_two_module_stack(self):
        fp = evaluate_polish(
            PolishExpression(["a", "b", "+"]), self.MODULES, allow_rotation=False
        )
        assert fp.chip.width == 4
        assert fp.chip.height == 13
        fp.validate()

    def test_rotation_reduces_area(self):
        # a (4x6) and b (3x7): best packing uses rotations.
        no_rot = evaluate_polish(
            PolishExpression(["a", "b", "+"]), self.MODULES, allow_rotation=False
        )
        rot = evaluate_polish(PolishExpression(["a", "b", "+"]), self.MODULES)
        assert rot.chip.area <= no_rot.chip.area

    def test_all_modules_placed(self):
        fp = evaluate_polish(
            PolishExpression(["a", "b", "+", "c", "*", "d", "+"]), self.MODULES
        )
        assert set(fp.module_names) == set(self.MODULES)
        fp.validate()

    def test_module_dims_preserved_up_to_rotation(self):
        fp = evaluate_polish(
            PolishExpression(["a", "b", "+", "c", "*", "d", "+"]), self.MODULES
        )
        for name, rect in fp.placements.items():
            m = self.MODULES[name]
            assert {round(rect.width, 6), round(rect.height, 6)} == {
                m.width,
                m.height,
            }

    def test_unknown_operand(self):
        with pytest.raises(KeyError):
            evaluate_polish(PolishExpression(["a", "zz", "+"]), self.MODULES)

    def test_chip_area_at_least_module_area(self):
        fp = evaluate_polish(
            PolishExpression(["a", "b", "+", "c", "*", "d", "+"]), self.MODULES
        )
        module_area = sum(m.area for m in self.MODULES.values())
        assert fp.chip.area >= module_area - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 10_000))
    def test_random_expressions_pack_validly(self, n, seed):
        rng = random.Random(seed)
        modules = {
            f"m{i}": Module(
                f"m{i}", rng.randint(1, 40), rng.randint(1, 40)
            )
            for i in range(n)
        }
        expr = initial_expression(list(modules), rng)
        for _ in range(15):
            expr = expr.random_neighbor(rng)
        fp = evaluate_polish(expr, modules)
        fp.validate()
        assert set(fp.module_names) == set(modules)
        assert fp.chip.area >= sum(m.area for m in modules.values()) - 1e-6
        # The chip is exactly the min-area root shape: every module fits.
        for rect in fp.placements.values():
            assert fp.chip.contains_rect(rect)
