"""Tests for normalized Polish expressions and the Wong-Liu moves."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import PolishExpression, initial_expression
from repro.floorplan.polish import OP_ABOVE, OP_BESIDE, OPERATORS


def is_valid_tokens(tokens):
    """Reference validity check, written independently of the class."""
    operands = 0
    operators = 0
    prev = None
    for t in tokens:
        if t in OPERATORS:
            operators += 1
            if operators >= operands:
                return False
            if prev == t:
                return False
        else:
            operands += 1
        prev = t if t in OPERATORS else None
    return operators == operands - 1


class TestValidation:
    def test_single_operand(self):
        e = PolishExpression(["a"])
        assert e.n_modules == 1

    def test_classic_example(self):
        # Wong-Liu's running example shape.
        e = PolishExpression(["a", "b", "+", "c", "*"])
        assert e.operands == ("a", "b", "c")

    def test_balloting_violation(self):
        with pytest.raises(ValueError, match="balloting"):
            PolishExpression(["a", "+", "b"])

    def test_consecutive_same_operators_rejected(self):
        with pytest.raises(ValueError, match="normalized"):
            PolishExpression(["a", "b", "c", "+", "+"])

    def test_alternating_operators_allowed(self):
        e = PolishExpression(["a", "b", "c", "+", "*"])
        assert e.n_modules == 3

    def test_duplicate_operand_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            PolishExpression(["a", "a", "+"])

    def test_wrong_operator_count(self):
        with pytest.raises(ValueError):
            PolishExpression(["a", "b"])

    def test_empty(self):
        with pytest.raises(ValueError):
            PolishExpression([])


class TestInitialExpression:
    def test_structure(self):
        e = initial_expression(["a", "b", "c", "d"])
        assert e.tokens == ("a", "b", "+", "c", "*", "d", "+")

    def test_shuffled_by_rng(self):
        e1 = initial_expression(list("abcdefgh"), random.Random(1))
        e2 = initial_expression(list("abcdefgh"), random.Random(2))
        assert e1 != e2

    def test_single_module(self):
        assert initial_expression(["only"]).tokens == ("only",)


class TestMoves:
    def setup_method(self):
        self.rng = random.Random(42)
        self.expr = initial_expression(list("abcdefgh"), self.rng)

    def test_m1_preserves_validity_and_structure(self):
        e = self.expr
        for _ in range(50):
            e = e.move_m1(self.rng)
            assert is_valid_tokens(e.tokens)
            # M1 permutes operands only; the operator pattern is fixed.
            ops = [t for t in e.tokens if t in OPERATORS]
            assert ops == [t for t in self.expr.tokens if t in OPERATORS]

    def test_m1_changes_operand_order(self):
        changed = any(
            self.expr.move_m1(random.Random(s)).operands != self.expr.operands
            for s in range(10)
        )
        assert changed

    def test_m2_preserves_validity_and_operands(self):
        e = self.expr
        for _ in range(50):
            e = e.move_m2(self.rng)
            assert is_valid_tokens(e.tokens)
            assert e.operands == self.expr.operands

    def test_m2_complements_a_chain(self):
        e = PolishExpression(["a", "b", "+", "c", "*"])
        moved = e.move_m2(random.Random(0))
        # Exactly one maximal chain flipped; token positions unchanged.
        assert [t in OPERATORS for t in moved.tokens] == [
            t in OPERATORS for t in e.tokens
        ]
        assert moved != e

    def test_m3_returns_valid_or_none(self):
        e = self.expr
        for _ in range(100):
            moved = e.move_m3(self.rng)
            if moved is not None:
                assert is_valid_tokens(moved.tokens)
                e = moved

    def test_m3_single_module_none(self):
        e = PolishExpression(["a"])
        assert e.move_m3(self.rng) is None

    def test_random_neighbor_always_valid(self):
        e = self.expr
        for _ in range(200):
            e = e.random_neighbor(self.rng)
            assert is_valid_tokens(e.tokens)
        assert sorted(e.operands) == sorted(self.expr.operands)

    @settings(max_examples=30)
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_neighborhood_closure_property(self, n_modules, seed):
        rng = random.Random(seed)
        e = initial_expression([f"m{i}" for i in range(n_modules)], rng)
        for _ in range(20):
            e = e.random_neighbor(rng)
        assert is_valid_tokens(e.tokens)
        assert e.n_modules == n_modules


class TestEquality:
    def test_eq_and_hash(self):
        a = PolishExpression(["a", "b", "+"])
        b = PolishExpression(["a", "b", "+"])
        c = PolishExpression(["a", "b", "*"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "a b +"
