"""Tests for slicing-tree construction internals."""

import pytest

from repro.floorplan.polish import OP_ABOVE, OP_BESIDE, PolishExpression
from repro.floorplan.slicing import build_slicing_tree
from repro.netlist import Module

MODULES = {
    "a": Module("a", 4, 6),
    "b": Module("b", 3, 7),
    "c": Module("c", 2, 2),
}


class TestTreeStructure:
    def test_single_leaf(self):
        root = build_slicing_tree(PolishExpression(["a"]), MODULES)
        assert root.is_leaf
        assert root.module_name == "a"
        assert root.left is None and root.right is None

    def test_two_leaves(self):
        root = build_slicing_tree(PolishExpression(["a", "b", "*"]), MODULES)
        assert not root.is_leaf
        assert root.op == OP_BESIDE
        assert root.left.module_name == "a"
        assert root.right.module_name == "b"

    def test_nested_structure_follows_postfix(self):
        # a b + c *  ==  (a above-composed-with b) beside c
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        assert root.op == OP_BESIDE
        assert root.left.op == OP_ABOVE
        assert root.right.module_name == "c"

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError, match="zz"):
            build_slicing_tree(PolishExpression(["a", "zz", "+"]), MODULES)


class TestShapeLists:
    def test_leaf_shape_count(self):
        root = build_slicing_tree(PolishExpression(["a"]), MODULES)
        assert len(root.shapes) == 2  # 4x6 and 6x4

    def test_rotation_disabled_single_shape(self):
        root = build_slicing_tree(
            PolishExpression(["a"]), MODULES, allow_rotation=False
        )
        assert len(root.shapes) == 1
        assert root.shapes[0].width == 4

    def test_internal_shapes_composed_from_children(self):
        root = build_slicing_tree(PolishExpression(["a", "b", "*"]), MODULES)
        for shape in root.shapes:
            ls = root.left.shapes[shape.left_index]
            rs = root.right.shapes[shape.right_index]
            assert shape.width == pytest.approx(ls.width + rs.width)
            assert shape.height == pytest.approx(max(ls.height, rs.height))

    def test_root_min_area_bounded_below_by_module_area(self):
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        module_area = sum(m.area for m in MODULES.values())
        assert root.shapes.min_area() >= module_area - 1e-9

    def test_shape_list_is_staircase(self):
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        widths = [s.width for s in root.shapes]
        heights = [s.height for s in root.shapes]
        assert widths == sorted(widths)
        assert heights == sorted(heights, reverse=True)
