"""Tests for slicing-tree construction internals."""

import pytest

from repro.floorplan.polish import OP_ABOVE, OP_BESIDE, PolishExpression
from repro.floorplan.slicing import build_slicing_tree
from repro.netlist import Module

MODULES = {
    "a": Module("a", 4, 6),
    "b": Module("b", 3, 7),
    "c": Module("c", 2, 2),
}


class TestTreeStructure:
    def test_single_leaf(self):
        root = build_slicing_tree(PolishExpression(["a"]), MODULES)
        assert root.is_leaf
        assert root.module_name == "a"
        assert root.left is None and root.right is None

    def test_two_leaves(self):
        root = build_slicing_tree(PolishExpression(["a", "b", "*"]), MODULES)
        assert not root.is_leaf
        assert root.op == OP_BESIDE
        assert root.left.module_name == "a"
        assert root.right.module_name == "b"

    def test_nested_structure_follows_postfix(self):
        # a b + c *  ==  (a above-composed-with b) beside c
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        assert root.op == OP_BESIDE
        assert root.left.op == OP_ABOVE
        assert root.right.module_name == "c"

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError, match="zz"):
            build_slicing_tree(PolishExpression(["a", "zz", "+"]), MODULES)


class TestShapeLists:
    def test_leaf_shape_count(self):
        root = build_slicing_tree(PolishExpression(["a"]), MODULES)
        assert len(root.shapes) == 2  # 4x6 and 6x4

    def test_rotation_disabled_single_shape(self):
        root = build_slicing_tree(
            PolishExpression(["a"]), MODULES, allow_rotation=False
        )
        assert len(root.shapes) == 1
        assert root.shapes[0].width == 4

    def test_internal_shapes_composed_from_children(self):
        root = build_slicing_tree(PolishExpression(["a", "b", "*"]), MODULES)
        for shape in root.shapes:
            ls = root.left.shapes[shape.left_index]
            rs = root.right.shapes[shape.right_index]
            assert shape.width == pytest.approx(ls.width + rs.width)
            assert shape.height == pytest.approx(max(ls.height, rs.height))

    def test_root_min_area_bounded_below_by_module_area(self):
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        module_area = sum(m.area for m in MODULES.values())
        assert root.shapes.min_area() >= module_area - 1e-9

    def test_shape_list_is_staircase(self):
        root = build_slicing_tree(
            PolishExpression(["a", "b", "+", "c", "*"]), MODULES
        )
        widths = [s.width for s in root.shapes]
        heights = [s.height for s in root.shapes]
        assert widths == sorted(widths)
        assert heights == sorted(heights, reverse=True)


class TestDeepChainPlacement:
    """Regression: `_place` used to recurse per tree level, so a
    left-deep chain (``m0 m1 * m2 * ...``) near 1k modules blew
    CPython's recursion limit.  Placement is now an explicit work
    stack; a 2k-module chain must pack without touching the limit."""

    def test_2000_module_left_deep_chain_places_iteratively(self):
        import sys

        from repro.floorplan.slicing import evaluate_polish

        n = 2000
        modules = {f"m{i}": Module(f"m{i}", 1, 1) for i in range(n)}
        tokens = ["m0"]
        for i in range(1, n):
            tokens.extend([f"m{i}", "*"])
        expression = PolishExpression(tokens)

        # Pin the limit low enough that any per-level recursion in the
        # placement path would fail loudly rather than depend on the
        # interpreter's default.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(500)
        try:
            floorplan = evaluate_polish(
                expression, modules, allow_rotation=False
            )
        finally:
            sys.setrecursionlimit(limit)

        assert len(floorplan.placements) == n
        # All-beside chain of 1x1s: a 2000-wide, 1-tall strip, each
        # module at its index.
        assert floorplan.chip.width == pytest.approx(float(n))
        assert floorplan.chip.height == pytest.approx(1.0)
        for i in range(0, n, 97):
            rect = floorplan.placements[f"m{i}"]
            assert rect.x_lo == pytest.approx(float(i))
            assert rect.y_lo == pytest.approx(0.0)
