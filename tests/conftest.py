"""Test-suite-wide configuration.

Hypothesis: property tests exercise packing/annealing code whose run
time varies with the drawn example; the default 200 ms deadline causes
flaky failures on loaded CI machines, so it is disabled globally and
example counts stay modest (individual tests override where they need
more).  Set ``REPRO_HYPOTHESIS_PROFILE=thorough`` for a deeper sweep.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=400,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))
