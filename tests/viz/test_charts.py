"""Tests for the SVG line charts."""

import pytest

from repro.viz import line_chart_svg


class TestLineChart:
    def test_basic_structure(self):
        svg = line_chart_svg(
            {"a": [1.0, 2.0, 3.0]},
            title="T",
            x_label="x",
            y_label="y",
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg
        assert ">T<" in svg
        assert ">x<" in svg

    def test_multiple_series_get_distinct_colors(self):
        svg = line_chart_svg({"a": [1, 2], "b": [2, 1], "c": [0, 3]})
        assert svg.count("<polyline") == 3
        # Each legend entry names its series.
        for name in ("a", "b", "c"):
            assert f">{name}<" in svg

    def test_custom_x_values(self):
        svg = line_chart_svg({"a": [5.0, 6.0]}, x_values=[10, 20])
        assert "10" in svg and "20" in svg

    def test_normalization_handles_mixed_scales(self):
        svg = line_chart_svg(
            {"small": [0.001, 0.002], "big": [1e6, 2e6]}, normalize=True
        )
        assert svg.count("<polyline") == 2

    def test_constant_series_normalized_to_half(self):
        svg = line_chart_svg({"flat": [5.0, 5.0, 5.0]}, normalize=True)
        assert "<polyline" in svg

    def test_escapes_markup(self):
        svg = line_chart_svg({"<evil>": [1, 2]}, title="a<b>c")
        assert "<evil>" not in svg.replace("&lt;evil&gt;", "")
        assert "&lt;" in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart_svg({})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [1.0]})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [1, 2], "b": [1, 2, 3]})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [1, 2]}, x_values=[1, 2, 3])
