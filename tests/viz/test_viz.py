"""Tests for ASCII and SVG rendering."""

import pytest

from repro.congestion import FixedGridModel, IrregularGridModel
from repro.floorplan import Floorplan
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet
from repro.viz import (
    congestion_svg,
    floorplan_svg,
    render_congestion_ascii,
    render_floorplan_ascii,
)


def floorplan():
    return Floorplan(
        {
            "alpha": Rect(0, 0, 50, 50),
            "beta": Rect(50, 0, 100, 50),
            "gamma": Rect(0, 50, 100, 100),
        },
        chip=Rect(0, 0, 100, 100),
    )


def congestion_map():
    nets = [
        TwoPinNet("a", Point(5, 5), Point(95, 95)),
        TwoPinNet("b", Point(10, 90), Point(90, 10)),
    ]
    return FixedGridModel(10.0).evaluate(Rect(0, 0, 100, 100), nets)


class TestAsciiFloorplan:
    def test_renders_all_modules(self):
        art = render_floorplan_ascii(floorplan(), width=40)
        assert "a" in art  # fill character: last char of name
        assert art.count("\n") >= 3
        assert art.startswith("+")

    def test_no_collision_marks_for_disjoint_modules(self):
        art = render_floorplan_ascii(floorplan(), width=60)
        assert "#" not in art

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_floorplan_ascii(floorplan(), width=1)

    def test_aspect_ratio_tracks_chip(self):
        tall = Floorplan({"a": Rect(0, 0, 10, 40)})
        art = render_floorplan_ascii(tall, width=20)
        rows = art.count("\n") - 1
        assert rows > 20  # taller than wide (halved for cells)


class TestAsciiCongestion:
    def test_renders_heat(self):
        art = render_congestion_ascii(congestion_map(), width=40)
        assert "peak density" in art
        assert "@" in art  # the hottest cell uses the top ramp char

    def test_empty_map_all_cold(self):
        cmap = FixedGridModel(10.0).evaluate(Rect(0, 0, 100, 100), [])
        art = render_congestion_ascii(cmap, width=30)
        raster = "\n".join(art.splitlines()[:-1])  # drop the legend line
        assert "@" not in raster

    def test_works_for_irregular_cells(self):
        nets = [TwoPinNet("a", Point(10, 10), Point(80, 70))]
        cmap = IrregularGridModel(10.0).evaluate(Rect(0, 0, 100, 100), nets)
        art = render_congestion_ascii(cmap, width=30)
        assert art.startswith("+")


class TestSvg:
    def test_floorplan_svg_well_formed(self):
        svg = floorplan_svg(floorplan(), px_width=320)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") == 1 + 3  # chip + modules
        assert "alpha" in svg  # tooltips

    def test_congestion_svg_cells(self):
        cmap = congestion_map()
        svg = congestion_svg(cmap, px_width=320)
        assert svg.count("<rect") == cmap.n_cells

    def test_congestion_svg_with_overlay(self):
        cmap = congestion_map()
        svg = congestion_svg(cmap, px_width=320, floorplan=floorplan())
        assert svg.count("<rect") == cmap.n_cells + 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            floorplan_svg(floorplan(), px_width=4)
        with pytest.raises(ValueError):
            congestion_svg(congestion_map(), px_width=4)

    def test_heat_color_extremes(self):
        from repro.viz.svg import _heat_color

        assert _heat_color(0.0) == "rgb(255,255,255)"
        assert _heat_color(1.0) == "rgb(255,0,0)"
        assert _heat_color(2.0) == "rgb(255,0,0)"  # clamped


class TestIrgridSvg:
    def test_renders_cut_lines_and_overlays(self):
        from repro.congestion import build_irgrid
        from repro.netlist import TwoPinNet
        from repro.viz import irgrid_svg

        fp = floorplan()
        nets = [
            TwoPinNet("a", Point(5, 5), Point(95, 95)),
            TwoPinNet("b", Point(10, 90), Point(90, 10)),
        ]
        ir = build_irgrid(fp.chip, nets, grid_size=5.0)
        svg = irgrid_svg(ir, floorplan=fp, nets=nets)
        assert svg.startswith("<svg")
        # Cut lines from both axes plus module outlines and ranges.
        assert svg.count("<line") == len(ir.x_lines) + len(ir.y_lines)
        assert svg.count("<rect") >= 1 + 3 + 2

    def test_without_overlays(self):
        from repro.congestion import build_irgrid
        from repro.viz import irgrid_svg

        fp = floorplan()
        ir = build_irgrid(fp.chip, [], grid_size=10.0)
        svg = irgrid_svg(ir)
        assert svg.count("<line") == 4  # chip boundaries only

    def test_size_validation(self):
        from repro.congestion import build_irgrid
        from repro.viz import irgrid_svg

        ir = build_irgrid(floorplan().chip, [], grid_size=10.0)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            irgrid_svg(ir, px_width=4)
