"""Tests for wirelength and order-statistic metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point
from repro.metrics import (
    area_weighted_top_fraction_mean,
    hpwl,
    top_fraction_mean,
    total_hpwl,
    total_two_pin_length,
)
from repro.netlist import Net, TwoPinNet


class TestHpwl:
    def test_two_pins(self):
        assert hpwl([Point(0, 0), Point(3, 4)]) == 7

    def test_multi_pin_bbox(self):
        pts = [Point(0, 0), Point(10, 2), Point(4, 8)]
        assert hpwl(pts) == 10 + 8

    def test_weighted(self):
        assert hpwl([Point(0, 0), Point(1, 1)], weight=2.5) == 5.0

    def test_single_pin_zero(self):
        assert hpwl([Point(5, 5)]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hpwl([])

    def test_total_hpwl(self):
        nets = [Net("a", ("m1", "m2")), Net("b", ("m1", "m3"), weight=2.0)]
        locations = {
            "a": {"m1": Point(0, 0), "m2": Point(2, 2)},
            "b": {"m1": Point(0, 0), "m3": Point(1, 1)},
        }
        assert total_hpwl(nets, locations) == 4 + 2 * 2


class TestTwoPinLength:
    def test_sums_weighted_lengths(self):
        nets = [
            TwoPinNet("a", Point(0, 0), Point(3, 4)),
            TwoPinNet("b", Point(0, 0), Point(1, 0), weight=10.0),
        ]
        assert total_two_pin_length(nets) == 7 + 10

    def test_empty(self):
        assert total_two_pin_length([]) == 0.0


class TestTopFractionMean:
    def test_basic(self):
        values = [1.0, 5.0, 3.0, 9.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.0]
        assert top_fraction_mean(values, 0.2) == pytest.approx((9 + 8) / 2)

    def test_small_lists_take_one(self):
        assert top_fraction_mean([3.0, 1.0], 0.1) == 3.0

    def test_full_fraction_is_mean(self):
        values = [1.0, 2.0, 3.0]
        assert top_fraction_mean(values, 1.0) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert top_fraction_mean([], 0.1) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_mean([1.0], 0.0)
        with pytest.raises(ValueError):
            top_fraction_mean([1.0], 1.1)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_bounded_by_max_and_mean(self, values):
        score = top_fraction_mean(values, 0.1)
        assert score <= max(values) + 1e-9
        assert score >= sum(values) / len(values) - 1e-9


class TestAreaWeightedTopFraction:
    def test_uniform_areas_match_plain(self):
        values = [1.0, 5.0, 3.0, 9.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.0]
        pairs = [(v, 1.0) for v in values]
        assert area_weighted_top_fraction_mean(pairs, 0.2) == pytest.approx(
            top_fraction_mean(values, 0.2)
        )

    def test_large_dense_cell_dominates(self):
        # One cell holds 30% of the area at density 10: the top-10%
        # score is exactly 10.
        pairs = [(10.0, 30.0), (1.0, 70.0)]
        assert area_weighted_top_fraction_mean(pairs, 0.1) == pytest.approx(10.0)

    def test_partial_cell_interpolation(self):
        # Top cell holds 5% of area at 10, next at 2: top-10% mixes
        # them half and half.
        pairs = [(10.0, 5.0), (2.0, 95.0)]
        expected = (10.0 * 5.0 + 2.0 * 5.0) / 10.0
        assert area_weighted_top_fraction_mean(pairs, 0.1) == pytest.approx(
            expected
        )

    def test_zero_area_cells_ignored(self):
        pairs = [(99.0, 0.0), (1.0, 100.0)]
        assert area_weighted_top_fraction_mean(pairs, 0.5) == pytest.approx(1.0)

    def test_empty_zero(self):
        assert area_weighted_top_fraction_mean([], 0.1) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            area_weighted_top_fraction_mean([(1.0, 1.0)], -0.1)

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.1, 50)),
            min_size=1,
            max_size=30,
        ),
        st.floats(0.01, 1.0),
    )
    def test_monotone_in_fraction(self, pairs, fraction):
        # Taking more area can only dilute the score.
        wide = area_weighted_top_fraction_mean(pairs, min(1.0, fraction * 2))
        narrow = area_weighted_top_fraction_mean(pairs, fraction)
        assert narrow >= wide - 1e-9
