"""Edge-case tests for the whole-floorplan batched evaluator."""

import numpy as np
import pytest

from repro.congestion.batched import batched_approx_mass
from repro.congestion.irgrid import build_irgrid
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 600, 600)


def net(x1, y1, x2, y2, name="n", weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


def evaluate(nets, grid_size=30.0, merge_factor=2.0):
    irgrid = build_irgrid(CHIP, nets, grid_size, merge_factor)
    return irgrid, batched_approx_mass(irgrid, nets, grid_size)


class TestEdgeCases:
    def test_no_nets(self):
        irgrid, mass = evaluate([])
        assert mass.shape == (1, 1)
        assert mass.sum() == 0.0

    def test_only_degenerate_nets(self):
        nets = [
            net(0, 300, 600, 300, "h"),
            net(300, 0, 300, 600, "v"),
            net(150, 150, 150, 150, "pt"),
        ]
        irgrid, mass = evaluate(nets)
        assert mass.max() <= 3.0 + 1e-12
        assert mass.sum() > 0

    def test_single_type_i_net_pins_certain(self):
        nets = [net(0, 0, 600, 600)]
        irgrid, mass = evaluate(nets, merge_factor=0.0)
        assert mass[0, 0] == pytest.approx(1.0)
        assert mass[-1, -1] == pytest.approx(1.0)

    def test_single_type_ii_net_pins_certain(self):
        nets = [net(0, 600, 600, 0)]
        irgrid, mass = evaluate(nets, merge_factor=0.0)
        assert mass[0, -1] == pytest.approx(1.0)
        assert mass[-1, 0] == pytest.approx(1.0)

    def test_mass_conservation_row(self):
        """For one net, summing crossing probabilities over any IR-grid
        row that slices the whole routing range must be >= 1 (every
        route passes through the row) and <= the row's cell count."""
        nets = [net(0, 0, 600, 600), net(90, 60, 510, 540, "b")]
        irgrid, mass = evaluate(nets, merge_factor=0.0)
        row_sums = mass.sum(axis=0)
        assert (row_sums >= 1.0 - 1e-9).all()

    def test_weights_respected(self):
        nets_a = [net(30, 30, 570, 510, weight=2.0)]
        nets_b = [net(30, 30, 570, 510, weight=1.0)]
        _, mass_a = evaluate(nets_a)
        _, mass_b = evaluate(nets_b)
        assert np.allclose(mass_a, 2.0 * mass_b)

    def test_mixed_types_superpose(self):
        n1 = net(30, 30, 570, 510, "t1")
        n2 = net(30, 510, 570, 30, "t2")
        ir_both = build_irgrid(CHIP, [n1, n2], 30.0, 2.0)
        both = batched_approx_mass(ir_both, [n1, n2], 30.0)
        only1 = batched_approx_mass(ir_both, [n1], 30.0)
        only2 = batched_approx_mass(ir_both, [n2], 30.0)
        assert np.allclose(both, only1 + only2, atol=1e-12)

    def test_probabilities_never_exceed_one_per_net(self):
        nets = [net(15, 25, 585, 575)]
        _, mass = evaluate(nets)
        assert mass.max() <= 1.0 + 1e-9

    def test_tiny_chip_single_cell(self):
        chip = Rect(0, 0, 10, 10)
        n = net(1, 1, 9, 9)
        irgrid = build_irgrid(chip, [n], grid_size=30.0)
        mass = batched_approx_mass(irgrid, [n], 30.0)
        # Whole chip one cell: the net certainly crosses it.
        assert mass.shape == (1, 1)
        assert mass[0, 0] == pytest.approx(1.0)


class TestPaperBoundsFlag:
    def test_batched_matches_per_net_with_paper_bounds(self):
        from repro.congestion import IrregularGridModel

        nets = [
            net(30, 30, 570, 510, "a"),
            net(60, 480, 540, 60, "b"),
        ]
        model = IrregularGridModel(30.0, paper_bounds=True)
        irgrid = build_irgrid(CHIP, nets, 30.0, 2.0)
        reference = np.zeros((irgrid.n_columns, irgrid.n_rows))
        for n in nets:
            model._add_net(irgrid, n, reference)
        batched = batched_approx_mass(irgrid, nets, 30.0, paper_bounds=True)
        assert np.abs(batched - reference).max() < 1e-9

    def test_paper_bounds_change_the_map(self):
        # merge_factor 0 keeps interior non-pin cells, where the
        # integration bounds matter.
        nets = [net(30, 30, 570, 510, "a"), net(120, 90, 480, 450, "b")]
        irgrid = build_irgrid(CHIP, nets, 30.0, 0.0)
        default = batched_approx_mass(irgrid, nets, 30.0, paper_bounds=False)
        paper = batched_approx_mass(irgrid, nets, 30.0, paper_bounds=True)
        assert not np.allclose(default, paper)
        # The midpoint-corrected bounds integrate a wider span: more mass.
        assert default.sum() > paper.sum()
