"""Tests for cross-model map resampling and comparison."""

import random

import numpy as np
import pytest

from repro.congestion import (
    FixedGridModel,
    IrregularGridModel,
    map_rank_correlation,
    resample_to_grid,
)
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 300, 300)


def nets(seed=0, n=12):
    rng = random.Random(seed)
    return [
        TwoPinNet(
            f"n{i}",
            Point(rng.uniform(0, 300), rng.uniform(0, 300)),
            Point(rng.uniform(0, 300), rng.uniform(0, 300)),
        )
        for i in range(n)
    ]


class TestResample:
    def test_mass_conserved_fixed(self):
        cmap = FixedGridModel(30.0).evaluate(CHIP, nets())
        for pitch in (10.0, 25.0, 70.0):
            grid = resample_to_grid(cmap, pitch)
            assert grid.sum() == pytest.approx(cmap.total_mass, rel=1e-9)

    def test_mass_conserved_irregular(self):
        cmap = IrregularGridModel(30.0).evaluate(CHIP, nets())
        grid = resample_to_grid(cmap, 20.0)
        assert grid.sum() == pytest.approx(cmap.total_mass, rel=1e-9)

    def test_identity_resample(self):
        """Resampling a uniform-grid map at its own aligned pitch
        reproduces the per-cell masses."""
        model = FixedGridModel(30.0)
        cmap = model.evaluate(Rect(0, 0, 300, 300), nets())
        grid = resample_to_grid(cmap, 30.0)
        reference = model.evaluate_array(Rect(0, 0, 300, 300), nets())
        assert np.allclose(grid, reference, atol=1e-9)

    def test_shape(self):
        cmap = FixedGridModel(30.0).evaluate(CHIP, nets())
        assert resample_to_grid(cmap, 50.0).shape == (6, 6)

    def test_invalid_pitch(self):
        cmap = FixedGridModel(30.0).evaluate(CHIP, nets())
        with pytest.raises(ValueError):
            resample_to_grid(cmap, 0.0)


class TestMapCorrelation:
    def test_self_correlation_high(self):
        cmap = FixedGridModel(30.0).evaluate(CHIP, nets())
        corr, n = map_rank_correlation(cmap, cmap, 30.0)
        assert corr == pytest.approx(1.0)
        assert n == 100

    def test_ir_map_tracks_fixed_map(self):
        """The IR and fixed maps of the same nets must agree spatially
        (same mass, different tilings).  The unit pitch is chosen small
        relative to the chip so the merged IR-grid retains real
        resolution; at the paper's pitch-to-chip ratios the IR map is
        intentionally much coarser (see the merge ablation)."""
        ns = nets(3, 20)
        ir = IrregularGridModel(10.0).evaluate(CHIP, ns)
        fixed = FixedGridModel(10.0).evaluate(CHIP, ns)
        corr, _ = map_rank_correlation(ir, fixed, 30.0)
        assert corr > 0.7

    def test_disjoint_chips_rejected(self):
        a = FixedGridModel(10.0).evaluate(Rect(0, 0, 50, 50), [])
        b = FixedGridModel(10.0).evaluate(Rect(100, 100, 150, 150), [])
        with pytest.raises(ValueError):
            map_rank_correlation(a, b, 10.0)
