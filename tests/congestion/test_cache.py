"""Tests for the bounded congestion caches and cached-path parity."""

import math
import threading

import numpy as np
import pytest

from repro.congestion import IrregularGridModel
from repro.congestion.batched import (
    batched_approx_mass,
    batched_approx_mass_arrays,
)
from repro.congestion.cache import BoundedCache, CacheContext
from repro.congestion.irgrid import build_irgrid, build_irgrid_arrays
from repro.floorplan import evaluate_polish, initial_expression
from repro.netlist import nets_to_arrays, random_circuit
from repro.pins import assign_pins
import random


class TestBoundedCache:
    def test_get_put_round_trip(self):
        cache = BoundedCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 0) == 0

    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_stats_accounting(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("x")
        cache.put("b", 2)
        cache.put("c", 3)
        s = cache.stats()
        assert s.hits == 1
        assert s.misses == 1
        assert s.lookups == 2
        assert s.hit_rate == 0.5
        assert s.evictions == 1
        assert s.size == 2
        assert len(cache) == 2

    def test_get_many_put_many(self):
        cache = BoundedCache(8)
        cache.put_many([("a", 1), ("b", 2)])
        got = cache.get_many(["a", "missing", "b"])
        assert got == [1, None, 2]
        s = cache.stats()
        assert s.hits == 2
        assert s.misses == 1

    def test_put_many_respects_bound(self):
        cache = BoundedCache(3)
        cache.put_many([(i, i) for i in range(10)])
        s = cache.stats()
        assert s.size == 3
        assert s.evictions == 7
        assert cache.get(9) == 9  # most recent survives

    def test_clear_resets(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        s = cache.stats()
        assert (s.hits, s.misses, s.size, s.evictions) == (0, 0, 0, 0)

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            BoundedCache(0)

    def test_context_exposes_default_caches(self):
        stats = CacheContext().stats()
        assert "net_mass" in stats
        assert "exact_prob" in stats
        assert "net_matrix" in stats
        assert "subtree_shapes" in stats

    def test_context_rejects_duplicate_register(self):
        ctx = CacheContext()
        with pytest.raises(ValueError):
            ctx.register("net_mass", BoundedCache(4))

    def test_contexts_are_independent(self):
        a = CacheContext()
        b = CacheContext()
        a.net_mass.put("k", 1)
        assert b.net_mass.get("k") is None
        assert a.stats()["net_mass"].size == 1
        assert b.stats()["net_mass"].size == 0
        assert b.stats()["net_mass"].misses == 1

    def test_thread_smoke(self):
        cache = BoundedCache(128)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    cache.put((base, i % 64), i)
                    cache.get((base, (i * 7) % 64))
                    cache.get_many([(base, j) for j in range(4)])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = cache.stats()
        assert s.size <= 128
        assert s.hits + s.misses == s.lookups


def _placed_nets(seed, n_modules=12, n_nets=30):
    netlist = random_circuit(n_modules, n_nets, seed=seed)
    rng = random.Random(seed)
    names = [m.name for m in netlist.modules]
    expr = initial_expression(names, rng)
    for _ in range(3 * n_modules):
        expr = expr.random_neighbor(rng)
    modules = {m.name: m for m in netlist.modules}
    floorplan = evaluate_polish(expr, modules, True)
    grid = max(math.sqrt(netlist.total_module_area) / 20.0, 1e-6)
    assignment = assign_pins(floorplan, netlist, grid)
    return floorplan.chip, assignment.two_pin_nets, grid


class TestCachedPathParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_mass_bit_identical(self, seed):
        chip, nets, grid = _placed_nets(seed)
        irgrid = build_irgrid(chip, nets, grid)
        cold = BoundedCache(65_536)
        uncached = batched_approx_mass(irgrid, nets, grid, cache=None)
        first = batched_approx_mass(irgrid, nets, grid, cache=cold)
        warm = batched_approx_mass(irgrid, nets, grid, cache=cold)
        assert np.array_equal(uncached, first)
        assert np.array_equal(uncached, warm)
        s = cold.stats()
        assert s.hits > 0  # the second pass actually hit

    @pytest.mark.parametrize("seed", [0, 3])
    def test_arrays_lane_matches_object_lane(self, seed):
        chip, nets, grid = _placed_nets(seed)
        arr = nets_to_arrays(nets)
        ir_obj = build_irgrid(chip, nets, grid)
        ir_arr = build_irgrid_arrays(chip, arr, grid)
        assert ir_obj.x_lines.lines == ir_arr.x_lines.lines
        assert ir_obj.y_lines.lines == ir_arr.y_lines.lines
        m_obj = batched_approx_mass(ir_obj, nets, grid, cache=None)
        m_arr = batched_approx_mass_arrays(ir_arr, arr, grid, cache=None)
        assert np.array_equal(m_obj, m_arr)

    def test_estimate_arrays_matches_estimate(self):
        chip, nets, grid = _placed_nets(5)
        arr = nets_to_arrays(nets)
        for use_cache in (False, True):
            # A fresh model owns a fresh (empty) private CacheContext.
            model = IrregularGridModel(grid, use_cache=use_cache)
            assert model.estimate(chip, nets) == model.estimate_arrays(
                chip, arr
            )

    def test_model_cached_equals_uncached(self):
        chip, nets, grid = _placed_nets(7)
        cached = IrregularGridModel(grid, use_cache=True)
        uncached = IrregularGridModel(grid, use_cache=False)
        a = cached.estimate(chip, nets)
        b = uncached.estimate(chip, nets)
        again = cached.estimate(chip, nets)
        assert a == b
        assert again == b
        s = cached.cache_context.net_mass.stats()
        assert s.hits > 0
        assert uncached.cache_context is None

    def test_two_models_never_share_cache_state(self):
        chip, nets, grid = _placed_nets(9)
        first = IrregularGridModel(grid, use_cache=True)
        second = IrregularGridModel(grid, use_cache=True)
        first.estimate(chip, nets)
        assert first.cache_context is not None
        assert second.cache_context is None  # lazily created on first use
        second.estimate(chip, nets)
        assert second.cache_context is not first.cache_context
        # The second model's warm-up saw only misses: nothing leaked over.
        assert second.cache_context.net_mass.stats().hits == 0
        assert first.cache_context.net_mass.stats().size > 0
