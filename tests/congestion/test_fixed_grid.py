"""Tests for the fixed-size-grid congestion model (Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import FixedGridModel, crossing_probability
from repro.geometry import Point, Rect
from repro.netlist import NetType, TwoPinNet


CHIP = Rect(0, 0, 100, 100)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FixedGridModel(0.0)
        with pytest.raises(ValueError):
            FixedGridModel(10.0, top_fraction=0.0)
        with pytest.raises(ValueError):
            FixedGridModel(10.0, top_fraction=1.5)

    def test_grid_shape(self):
        model = FixedGridModel(10.0)
        assert model.grid_shape(CHIP) == (10, 10)
        assert FixedGridModel(30.0).grid_shape(CHIP) == (4, 4)
        # Exact division must not add a phantom column.
        assert FixedGridModel(50.0).grid_shape(CHIP) == (2, 2)


class TestSingleNet:
    def test_mass_conservation_per_antidiagonal(self):
        """A single type-I net deposits total mass = number of
        anti-diagonals of its range (each route crosses each
        anti-diagonal once)."""
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 5), Point(75, 75))  # 8x8 cells
        grid = model.evaluate_array(CHIP, [net])
        assert grid.sum() == pytest.approx(8 + 8 - 1)

    def test_matches_formula2(self):
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 5), Point(55, 35))  # 6x4 range
        grid = model.evaluate_array(CHIP, [net])
        for x in range(6):
            for y in range(4):
                expected = crossing_probability(x, y, 6, 4, NetType.TYPE_I)
                assert grid[x, y] == pytest.approx(expected)
        assert grid[6:, :].sum() == 0.0
        assert grid[:, 4:].sum() == 0.0

    def test_type_ii_orientation(self):
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 35), Point(55, 5))  # type II
        grid = model.evaluate_array(CHIP, [net])
        # Pin cells certain.
        assert grid[0, 3] == pytest.approx(1.0)
        assert grid[5, 0] == pytest.approx(1.0)
        # The opposite corners are the least likely cells.
        assert grid[0, 0] < 0.5
        assert grid[5, 3] < 0.5

    def test_degenerate_horizontal_line(self):
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 25), Point(65, 25))
        grid = model.evaluate_array(CHIP, [net])
        assert grid[:7, 2].tolist() == [1.0] * 7
        assert grid.sum() == pytest.approx(7.0)

    def test_same_cell_pins(self):
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 5), Point(7, 8))
        grid = model.evaluate_array(CHIP, [net])
        assert grid[0, 0] == pytest.approx(1.0)
        assert grid.sum() == pytest.approx(1.0)

    def test_weight_scales_mass(self):
        model = FixedGridModel(10.0)
        net = TwoPinNet("n", Point(5, 5), Point(45, 45), weight=3.0)
        grid = model.evaluate_array(CHIP, [net])
        unweighted = model.evaluate_array(
            CHIP, [TwoPinNet("n", Point(5, 5), Point(45, 45))]
        )
        assert np.allclose(grid, 3.0 * unweighted)


class TestAggregation:
    def test_multiple_nets_superpose(self):
        model = FixedGridModel(10.0)
        a = TwoPinNet("a", Point(5, 5), Point(45, 45))
        b = TwoPinNet("b", Point(5, 5), Point(45, 45))
        combined = model.evaluate_array(CHIP, [a, b])
        single = model.evaluate_array(CHIP, [a])
        assert np.allclose(combined, 2.0 * single)

    def test_map_and_array_scores_agree(self):
        model = FixedGridModel(10.0)
        nets = [
            TwoPinNet("a", Point(5, 5), Point(95, 95)),
            TwoPinNet("b", Point(15, 85), Point(85, 15)),
            TwoPinNet("c", Point(5, 55), Point(95, 55)),
        ]
        cmap = model.evaluate(CHIP, nets)
        array = model.evaluate_array(CHIP, nets)
        assert model.score(cmap) == pytest.approx(model.score_array(array))
        assert model.estimate(CHIP, nets) == pytest.approx(
            model.estimate_fast(CHIP, nets)
        )

    def test_map_covers_chip_exactly(self):
        model = FixedGridModel(30.0)  # does not divide 100 evenly
        cmap = model.evaluate(CHIP, [TwoPinNet("a", Point(5, 5), Point(95, 95))])
        total_area = sum(c.rect.area for c in cmap.cells)
        assert total_area == pytest.approx(CHIP.area)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 99), st.integers(0, 99),
                st.integers(0, 99), st.integers(0, 99),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_total_mass_counts_antidiagonals(self, endpoints):
        """Superposition: total mass == sum over nets of the number of
        covered anti-diagonals (a sharp conservation law)."""
        model = FixedGridModel(10.0)
        nets = [
            TwoPinNet(f"n{i}", Point(x1, y1), Point(x2, y2))
            for i, (x1, y1, x2, y2) in enumerate(endpoints)
        ]
        grid = model.evaluate_array(CHIP, nets)
        expected = 0
        for x1, y1, x2, y2 in endpoints:
            g1 = abs(x2 // 10 - x1 // 10) + 1
            g2 = abs(y2 // 10 - y1 // 10) + 1
            expected += g1 + g2 - 1
        assert grid.sum() == pytest.approx(expected)


class TestCellIndex:
    def test_interior_points(self):
        model = FixedGridModel(10.0)
        assert model.cell_index(CHIP, 0.0, 0.0) == (0, 0)
        assert model.cell_index(CHIP, 15.0, 27.0) == (1, 2)

    def test_boundary_folds_into_last_cell(self):
        model = FixedGridModel(10.0)
        assert model.cell_index(CHIP, 100.0, 100.0) == (9, 9)

    def test_out_of_chip_clamped(self):
        model = FixedGridModel(10.0)
        assert model.cell_index(CHIP, -5.0, 500.0) == (0, 9)
