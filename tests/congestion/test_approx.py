"""Tests for the Theorem-1 approximation (Section 4.4-4.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import (
    ApproximationDomainError,
    approx_function1_pointwise,
    approx_ir_probability,
    exact_ir_probability,
)
from repro.congestion.approx import (
    exact_function1_pointwise,
    type_i_error_grids,
)
from repro.netlist import NetType


class TestPointwiseFunction1:
    def test_figure8_case_b_accuracy(self):
        """Paper Figure 8(b): 31x21 range, y2 = 15, x = 10..20 -- the
        approximation is 'extremely accurate' (deviation << 0.05)."""
        for x in range(10, 21):
            exact = exact_function1_pointwise(x, 31, 21, 15)
            approx = approx_function1_pointwise(x, 31, 21, 15)
            assert abs(approx - exact) < 0.01, x

    def test_figure8_case_d_error_grid(self):
        """Figure 8(d): the approximation has no value at x = 30 with
        y2 = 19 ((x+y2)/(g1+g2-3) = 1)."""
        with pytest.raises(ApproximationDomainError):
            approx_function1_pointwise(30, 31, 21, 19)

    def test_figure8_case_d_valid_region_deviation(self):
        """Section 4.5: deviation 'generally less than 0.05'."""
        for x in range(20, 30):
            exact = exact_function1_pointwise(x, 31, 21, 19)
            approx = approx_function1_pointwise(x, 31, 21, 19)
            assert abs(approx - exact) < 0.05, x

    def test_origin_error_case(self):
        # (x + y2) == 0: mean fraction is 0.
        with pytest.raises(ApproximationDomainError):
            approx_function1_pointwise(0, 10, 10, 0)

    def test_beyond_one_error_case(self):
        with pytest.raises(ApproximationDomainError):
            approx_function1_pointwise(9, 10, 10, 9)

    def test_exact_pointwise_zero_on_top_edge(self):
        # y2 = g2-1 means Tb(x, y2+1) = 0: no top exits exist.
        assert exact_function1_pointwise(3, 10, 10, 9) == 0.0


class TestErrorGridEnumeration:
    def test_paper_list(self):
        """Section 4.5 names exactly (0,0), (g1-2,g2-1), (g1-1,g2-2),
        (g1-1,g2-1) as the failing grids of a type-I net."""
        assert type_i_error_grids(31, 21) == (
            (0, 0),
            (29, 20),
            (30, 19),
            (30, 20),
        )

    @given(st.integers(4, 20), st.integers(4, 20))
    def test_error_grids_are_where_pointwise_fails(self, g1, g2):
        # Scan the whole top boundary parameterization: failures occur
        # exactly where (x + y2) in {0, >= g1+g2-3}.
        big_r = g1 + g2 - 3
        for y2 in (0, g2 - 2, g2 - 1):
            for x in range(g1):
                should_fail = (x + y2 == 0) or (x + y2 >= big_r)
                try:
                    approx_function1_pointwise(x, g1, g2, y2)
                    failed = False
                except ApproximationDomainError:
                    failed = True
                assert failed == should_fail, (x, y2)


class TestIRGridApproximation:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(10, 30), st.integers(10, 30), st.data())
    def test_interior_accuracy(self, g1, g2, data):
        """Two or more grids away from the pins, Theorem 1 tracks
        Formula 3 within the paper's 0.05 deviation bound (an
        exhaustive scan over this domain peaks at ~0.035)."""
        x1 = data.draw(st.integers(2, g1 - 4))
        x2 = data.draw(st.integers(x1, g1 - 4))
        y1 = data.draw(st.integers(2, g2 - 4))
        y2 = data.draw(st.integers(y1, g2 - 4))
        nt = data.draw(st.sampled_from([NetType.TYPE_I, NetType.TYPE_II]))
        exact = exact_ir_probability(g1, g2, nt, x1, x2, y1, y2)
        approx = approx_ir_probability(g1, g2, nt, x1, x2, y1, y2)
        assert approx == pytest.approx(exact, abs=0.05)

    def test_result_in_unit_interval(self):
        for x1 in range(1, 6):
            p = approx_ir_probability(12, 12, NetType.TYPE_I, x1, x1 + 3, 2, 8)
            assert 0.0 <= p <= 1.0

    def test_far_pin_cell_raises(self):
        with pytest.raises(ApproximationDomainError):
            approx_ir_probability(10, 10, NetType.TYPE_I, 8, 9, 8, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            approx_ir_probability(10, 10, NetType.DEGENERATE, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            approx_ir_probability(1, 10, NetType.TYPE_I, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            approx_ir_probability(10, 10, NetType.TYPE_I, 5, 4, 0, 0)

    def test_paper_bounds_narrower_than_corrected(self):
        # The midpoint-corrected integral covers one extra unit of
        # width, so it reports at least as much probability.
        corrected = approx_ir_probability(
            20, 20, NetType.TYPE_I, 5, 8, 5, 8, paper_bounds=False
        )
        paper = approx_ir_probability(
            20, 20, NetType.TYPE_I, 5, 8, 5, 8, paper_bounds=True
        )
        assert paper <= corrected + 1e-12

    def test_midpoint_bounds_beat_paper_bounds(self):
        # On interior IR-grids the corrected bounds track the exact sum
        # more closely -- the reason they are the default.
        exact = exact_ir_probability(20, 20, NetType.TYPE_I, 5, 8, 5, 8)
        corrected = approx_ir_probability(20, 20, NetType.TYPE_I, 5, 8, 5, 8)
        paper = approx_ir_probability(
            20, 20, NetType.TYPE_I, 5, 8, 5, 8, paper_bounds=True
        )
        assert abs(corrected - exact) <= abs(paper - exact)

    def test_type_ii_mirror_consistency(self):
        p2 = approx_ir_probability(14, 11, NetType.TYPE_II, 3, 6, 2, 5)
        p1 = approx_ir_probability(
            14, 11, NetType.TYPE_I, 3, 6, 11 - 1 - 5, 11 - 1 - 2
        )
        assert p2 == pytest.approx(p1, rel=1e-12)

    def test_more_panels_refine(self):
        exact = exact_ir_probability(25, 25, NetType.TYPE_I, 6, 12, 6, 12)
        coarse = approx_ir_probability(
            25, 25, NetType.TYPE_I, 6, 12, 6, 12, panels=2
        )
        fine = approx_ir_probability(
            25, 25, NetType.TYPE_I, 6, 12, 6, 12, panels=32
        )
        assert abs(fine - exact) <= abs(coarse - exact) + 1e-4
