"""Tests for Irregular-Grid construction (Section 4.2, step 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import build_irgrid
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 1000, 800)


def net(x1, y1, x2, y2, name="n"):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2))


class TestConstruction:
    def test_no_nets_single_cell(self):
        ir = build_irgrid(CHIP, [], grid_size=10.0)
        assert ir.n_cells == 1
        assert ir.cell_rect(0, 0) == CHIP

    def test_single_net_cuts(self):
        ir = build_irgrid(CHIP, [net(100, 100, 500, 400)], grid_size=10.0)
        # chip boundaries + two cuts per axis from the routing range.
        assert ir.x_lines.lines == (0, 100, 500, 1000)
        assert ir.y_lines.lines == (0, 100, 400, 800)
        assert ir.n_cells == 9

    def test_figure5_style_count(self):
        """Multiple overlapping ranges produce the expected partition."""
        nets = [
            net(100, 100, 400, 300, "a"),
            net(200, 200, 600, 500, "b"),
            net(350, 50, 800, 700, "c"),
        ]
        ir = build_irgrid(CHIP, nets, grid_size=1.0)
        assert ir.n_columns == 7  # 0,100,200,350,400,600,800,1000
        assert ir.n_rows == 7  # 0,50,100,200,300,500,700,800

    def test_merging_threshold(self):
        nets = [net(100, 100, 500, 400), net(110, 105, 505, 395, "m")]
        ir = build_irgrid(CHIP, nets, grid_size=10.0, merge_factor=2.0)
        # Lines within 20um merged: 100/110 -> 105, 500/505 -> 502.5.
        assert 105.0 in ir.x_lines.lines
        assert 502.5 in ir.x_lines.lines
        assert len(ir.x_lines.lines) == 4

    def test_chip_boundaries_pinned(self):
        nets = [net(5, 5, 995, 795)]  # cuts close to the boundary
        ir = build_irgrid(CHIP, nets, grid_size=10.0, merge_factor=2.0)
        assert ir.x_lines.lines[0] == 0.0
        assert ir.x_lines.lines[-1] == 1000.0
        assert ir.y_lines.lines[0] == 0.0
        assert ir.y_lines.lines[-1] == 800.0

    def test_out_of_chip_ranges_clamped(self):
        ir = build_irgrid(
            Rect(0, 0, 100, 100), [net(-50, -50, 150, 150)], grid_size=5.0
        )
        lo, hi = ir.x_lines.span
        assert lo == 0.0 and hi == 100.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_irgrid(CHIP, [], grid_size=0.0)
        with pytest.raises(ValueError):
            build_irgrid(CHIP, [], grid_size=10.0, merge_factor=-1.0)


class TestQueries:
    def test_snap_range(self):
        ir = build_irgrid(CHIP, [net(100, 100, 500, 400)], grid_size=10.0)
        snapped = ir.snap_range(Rect(102, 98, 497, 403))
        assert snapped == Rect(100, 100, 500, 400)

    def test_cell_span_covers_snapped_range(self):
        ir = build_irgrid(CHIP, [net(100, 100, 500, 400)], grid_size=10.0)
        snapped = ir.snap_range(Rect(100, 100, 500, 400))
        col_lo, col_hi, row_lo, row_hi = ir.cell_span(snapped)
        assert (col_lo, col_hi) == (1, 1)
        assert (row_lo, row_hi) == (1, 1)

    def test_cell_span_degenerate_range(self):
        ir = build_irgrid(CHIP, [net(100, 100, 500, 400)], grid_size=10.0)
        snapped = ir.snap_range(Rect(500, 100, 500, 400))
        col_lo, col_hi, _, _ = ir.cell_span(snapped)
        assert col_lo == col_hi == 2

    def test_cells_iteration_row_major(self):
        ir = build_irgrid(CHIP, [net(100, 100, 500, 400)], grid_size=10.0)
        cells = list(ir.cells())
        assert len(cells) == ir.n_cells
        assert cells[0][:2] == (0, 0)
        assert cells[-1][:2] == (ir.n_columns - 1, ir.n_rows - 1)


class TestTilingInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1000), st.floats(0, 800),
                st.floats(0, 1000), st.floats(0, 800),
            ),
            min_size=0,
            max_size=15,
        ),
        st.floats(1.0, 50.0),
        st.floats(0.0, 4.0),
    )
    def test_cells_partition_chip(self, endpoints, grid_size, merge_factor):
        nets = [
            net(x1, y1, x2, y2, f"n{i}")
            for i, (x1, y1, x2, y2) in enumerate(endpoints)
        ]
        ir = build_irgrid(CHIP, nets, grid_size, merge_factor)
        total = sum(rect.area for _, _, rect in ir.cells())
        assert total == pytest.approx(CHIP.area, rel=1e-9)
        # Cells must not overlap in their interiors.
        rects = [rect for _, _, rect in ir.cells()]
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps_open(b)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1000), st.floats(0, 800),
                st.floats(0, 1000), st.floats(0, 800),
            ),
            min_size=1,
            max_size=15,
        ),
        st.floats(1.0, 50.0),
    )
    def test_merged_gaps_respect_threshold(self, endpoints, grid_size):
        nets = [
            net(x1, y1, x2, y2, f"n{i}")
            for i, (x1, y1, x2, y2) in enumerate(endpoints)
        ]
        ir = build_irgrid(CHIP, nets, grid_size, merge_factor=2.0)
        threshold = 2.0 * grid_size
        for lines in (ir.x_lines.lines, ir.y_lines.lines):
            if len(lines) <= 2:
                continue  # chip boundary fallback
            for a, b in zip(lines, lines[1:]):
                assert b - a >= min(threshold, b - a + 1e-9) or True
                # Interior gaps below threshold can only involve the
                # pinned chip boundaries.
                if b - a < threshold - 1e-9:
                    assert a == lines[0] or b == lines[-1]
