"""Tests for the RUDY baseline estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import RudyModel
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 100, 100)


def net(x1, y1, x2, y2, name="n", weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RudyModel(0.0)
        with pytest.raises(ValueError):
            RudyModel(10.0, top_fraction=0.0)
        with pytest.raises(ValueError):
            RudyModel(10.0, min_extent=0.0)


class TestDemand:
    def test_total_demand_equals_hpwl(self):
        """Integrated RUDY demand of a net = density * bbox area =
        w + h = its half-perimeter wirelength."""
        model = RudyModel(10.0)
        n = net(10, 20, 70, 80)
        grid = model.evaluate_array(CHIP, [n])
        assert grid.sum() == pytest.approx(n.routing_range.half_perimeter)

    def test_uniform_inside_bbox(self):
        model = RudyModel(10.0)
        grid = model.evaluate_array(CHIP, [net(0, 0, 100, 100)])
        # Full-chip bbox with aligned cells: all entries equal.
        assert np.allclose(grid, grid[0, 0])

    def test_outside_bbox_zero(self):
        model = RudyModel(10.0)
        grid = model.evaluate_array(CHIP, [net(10, 10, 40, 40)])
        assert grid[6:, :].sum() == 0.0
        assert grid[:, 6:].sum() == 0.0

    def test_partial_cell_overlap_exact(self):
        """A bbox ending mid-cell deposits proportionally less there --
        pitch independence."""
        model_fine = RudyModel(5.0)
        model_coarse = RudyModel(20.0)
        n = net(12, 17, 63, 88)
        fine = model_fine.evaluate_array(CHIP, [n]).sum()
        coarse = model_coarse.evaluate_array(CHIP, [n]).sum()
        assert fine == pytest.approx(coarse, rel=1e-9)

    def test_degenerate_net_fattened(self):
        model = RudyModel(10.0)
        grid = model.evaluate_array(CHIP, [net(10, 50, 90, 50)])
        assert grid.sum() > 0
        assert np.isfinite(grid).all()

    def test_weight_scales(self):
        model = RudyModel(10.0)
        heavy = model.evaluate_array(CHIP, [net(10, 10, 60, 60, weight=3.0)])
        light = model.evaluate_array(CHIP, [net(10, 10, 60, 60)])
        assert np.allclose(heavy, 3.0 * light)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100), st.floats(0, 100),
                st.floats(0, 100), st.floats(0, 100),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_superposition_and_nonnegativity(self, endpoints):
        model = RudyModel(10.0)
        nets = [
            net(x1, y1, x2, y2, f"n{i}")
            for i, (x1, y1, x2, y2) in enumerate(endpoints)
        ]
        combined = model.evaluate_array(CHIP, nets)
        assert (combined >= -1e-12).all()
        summed = sum(model.evaluate_array(CHIP, [n]) for n in nets)
        assert np.allclose(combined, summed)


class TestScoring:
    def test_map_and_array_agree(self):
        model = RudyModel(10.0)
        nets = [net(5, 5, 95, 95), net(10, 90, 90, 10)]
        cmap = model.evaluate(CHIP, nets)
        assert model.score(cmap) == pytest.approx(
            model.estimate_fast(CHIP, nets)
        )

    def test_concentration_raises_score(self):
        model = RudyModel(10.0)
        piled = [net(40, 40, 60, 60, f"p{i}") for i in range(4)]
        spread = [
            net(5 + 20 * i, 5, 15 + 20 * i, 95, f"s{i}") for i in range(4)
        ]
        assert model.estimate_fast(CHIP, piled) > model.estimate_fast(
            CHIP, spread
        )
