"""Tests for hotspot attribution."""

import pytest

from repro.congestion import IrregularGridModel, analyze_hotspots
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 600, 600)


def net(x1, y1, x2, y2, name, weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


def cluster_instance():
    """Three nets piled in one corner plus one elsewhere."""
    return [
        net(390, 390, 590, 590, "hot_a"),
        net(400, 380, 580, 570, "hot_b"),
        net(380, 400, 570, 580, "hot_c"),
        net(10, 10, 150, 150, "cold"),
    ]


class TestAnalyzeHotspots:
    def test_hot_nets_identified(self):
        model = IrregularGridModel(30.0)
        report = analyze_hotspots(model, CHIP, cluster_instance(), top_cells=3)
        dominant = [name for name, _ in report.dominant_nets(3)]
        assert set(dominant) <= {"hot_a", "hot_b", "hot_c"}
        assert "cold" not in dominant

    def test_cell_contributions_ordered_and_bounded(self):
        model = IrregularGridModel(30.0)
        report = analyze_hotspots(model, CHIP, cluster_instance())
        for cell in report.cells:
            amounts = [amount for _, amount in cell.contributors]
            assert amounts == sorted(amounts, reverse=True)
            assert all(0.0 < a <= 1.0 + 1e-9 for a in amounts)

    def test_contributions_sum_to_cell_mass(self):
        model = IrregularGridModel(30.0)
        nets = cluster_instance()
        report = analyze_hotspots(
            model, CHIP, nets, top_cells=1, top_nets_per_cell=len(nets)
        )
        cell = report.cells[0]
        total = sum(amount for _, amount in cell.contributors)
        assert total == pytest.approx(cell.mass, rel=1e-9)

    def test_top_cells_limit(self):
        model = IrregularGridModel(30.0)
        report = analyze_hotspots(model, CHIP, cluster_instance(), top_cells=2)
        assert len(report.cells) == 2

    def test_validation(self):
        model = IrregularGridModel(30.0)
        with pytest.raises(ValueError):
            analyze_hotspots(model, CHIP, cluster_instance(), top_cells=0)
        with pytest.raises(ValueError):
            analyze_hotspots(
                model, CHIP, cluster_instance(), top_nets_per_cell=0
            )

    def test_weighted_net_dominates(self):
        nets = [
            net(100, 100, 500, 500, "light", weight=1.0),
            net(110, 90, 510, 490, "heavy", weight=5.0),
        ]
        model = IrregularGridModel(30.0)
        report = analyze_hotspots(model, CHIP, nets, top_cells=3)
        assert report.dominant_nets(1)[0][0] == "heavy"
