"""Tests for exact route counting (Formulas 1-2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import (
    crossing_probability,
    probability_table,
    route_count_from_p1,
    route_count_to_p2,
    total_routes,
)
from repro.netlist import NetType

dims = st.integers(2, 25)


class TestTotalRoutes:
    def test_small_grids(self):
        assert total_routes(2, 2) == 2
        assert total_routes(3, 3) == 6
        assert total_routes(6, 6) == 252  # paper Figure 6

    def test_single_row_or_column(self):
        assert total_routes(1, 5) == 1
        assert total_routes(7, 1) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            total_routes(0, 3)


class TestRouteCounts:
    def test_type_i_pascal_triangle(self):
        # Figure 2(a): Ta grows as Pascal's triangle from the LL pin.
        g = 6
        for x in range(g):
            for y in range(g):
                assert route_count_from_p1(
                    x, y, g, g, NetType.TYPE_I
                ) == math.comb(x + y, y)

    def test_type_i_endpoints(self):
        assert route_count_from_p1(0, 0, 5, 4, NetType.TYPE_I) == 1
        assert route_count_to_p2(4, 3, 5, 4, NetType.TYPE_I) == 1
        assert route_count_from_p1(4, 3, 5, 4, NetType.TYPE_I) == total_routes(5, 4)
        assert route_count_to_p2(0, 0, 5, 4, NetType.TYPE_I) == total_routes(5, 4)

    def test_type_ii_endpoints(self):
        # Pins at (0, g2-1) and (g1-1, 0).
        assert route_count_from_p1(0, 3, 5, 4, NetType.TYPE_II) == 1
        assert route_count_to_p2(4, 0, 5, 4, NetType.TYPE_II) == 1
        assert route_count_from_p1(4, 0, 5, 4, NetType.TYPE_II) == total_routes(5, 4)

    def test_out_of_range_zero(self):
        assert route_count_from_p1(-1, 0, 4, 4, NetType.TYPE_I) == 0
        assert route_count_from_p1(4, 0, 4, 4, NetType.TYPE_I) == 0
        assert route_count_to_p2(0, 9, 4, 4, NetType.TYPE_II) == 0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            route_count_from_p1(0, 0, 4, 4, NetType.DEGENERATE)

    @given(dims, dims)
    def test_ta_tb_mirror_relation(self, g1, g2):
        # Tb(x, y) == Ta evaluated from the far pin (Formula 1).
        for x in range(g1):
            for y in range(g2):
                assert route_count_to_p2(
                    x, y, g1, g2, NetType.TYPE_I
                ) == route_count_from_p1(
                    g1 - 1 - x, g2 - 1 - y, g1, g2, NetType.TYPE_I
                )


class TestCrossingProbability:
    def test_pin_cells_certain(self):
        assert crossing_probability(0, 0, 7, 5, NetType.TYPE_I) == pytest.approx(1.0)
        assert crossing_probability(6, 4, 7, 5, NetType.TYPE_I) == pytest.approx(1.0)
        assert crossing_probability(0, 4, 7, 5, NetType.TYPE_II) == pytest.approx(1.0)
        assert crossing_probability(6, 0, 7, 5, NetType.TYPE_II) == pytest.approx(1.0)

    def test_outside_range_zero(self):
        assert crossing_probability(9, 0, 4, 4, NetType.TYPE_I) == 0.0
        assert crossing_probability(0, -1, 4, 4, NetType.TYPE_I) == 0.0

    def test_2x2_symmetric(self):
        # Two routes; each interior corner carries one.
        assert crossing_probability(0, 1, 2, 2, NetType.TYPE_I) == pytest.approx(0.5)
        assert crossing_probability(1, 0, 2, 2, NetType.TYPE_I) == pytest.approx(0.5)

    @given(dims, dims, st.sampled_from([NetType.TYPE_I, NetType.TYPE_II]))
    def test_probabilities_in_unit_interval(self, g1, g2, nt):
        table = probability_table(g1, g2, nt)
        for column in table:
            for p in column:
                assert -1e-12 <= p <= 1.0 + 1e-12

    @given(dims, dims)
    def test_antidiagonal_sums_to_one_type_i(self, g1, g2):
        # Every monotone route crosses each anti-diagonal of the range
        # exactly once, so the crossing probabilities along any
        # anti-diagonal d = x + y sum to 1.
        table = probability_table(g1, g2, NetType.TYPE_I)
        for d in range(g1 + g2 - 1):
            s = sum(
                table[x][d - x]
                for x in range(max(0, d - g2 + 1), min(g1, d + 1))
            )
            assert s == pytest.approx(1.0, rel=1e-9)

    @given(dims, dims)
    def test_type_ii_is_vertical_mirror(self, g1, g2):
        t1 = probability_table(g1, g2, NetType.TYPE_I)
        t2 = probability_table(g1, g2, NetType.TYPE_II)
        for x in range(g1):
            for y in range(g2):
                assert t2[x][y] == pytest.approx(t1[x][g2 - 1 - y], rel=1e-9)

    def test_large_range_no_overflow(self):
        table_value = crossing_probability(150, 150, 300, 301, NetType.TYPE_I)
        assert 0.0 < table_value < 1.0
        assert math.isfinite(table_value)
