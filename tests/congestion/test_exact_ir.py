"""Tests for the exact IR-grid crossing probability (Formula 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import crossing_probability, exact_ir_probability
from repro.netlist import NetType

dims = st.integers(2, 16)


class TestPaperExample:
    def test_figure6_value(self):
        """The paper's worked example: 6x6 type-I range, IR-grid
        spanning columns 1..3 and rows 1..4 (0-based) -> 245/252."""
        p = exact_ir_probability(6, 6, NetType.TYPE_I, 1, 3, 1, 4)
        assert p == pytest.approx(245 / 252, rel=1e-12)

    def test_figure6_term_breakdown(self):
        # 5*1 + 15*1 + 35*1 (top exits) + 4*5 + 10*4 + 20*3 + 35*2
        # (right exits) = 245; sanity-check the numerator via the
        # published integers.
        numerator = 5 + 15 + 35 + 20 + 40 + 60 + 70
        assert numerator == 245


class TestBasicProperties:
    def test_whole_range_is_certain(self):
        assert exact_ir_probability(5, 7, NetType.TYPE_I, 0, 4, 0, 6) == (
            pytest.approx(1.0)
        )
        assert exact_ir_probability(5, 7, NetType.TYPE_II, 0, 4, 0, 6) == (
            pytest.approx(1.0)
        )

    def test_single_cell_matches_formula2(self):
        for nt in (NetType.TYPE_I, NetType.TYPE_II):
            for x in range(5):
                for y in range(4):
                    ir = exact_ir_probability(5, 4, nt, x, x, y, y)
                    cell = crossing_probability(x, y, 5, 4, nt)
                    assert ir == pytest.approx(cell, rel=1e-9), (nt, x, y)

    def test_pin_corner_cell(self):
        # The far-corner cell contains the pin: probability 1.
        assert exact_ir_probability(6, 6, NetType.TYPE_I, 5, 5, 5, 5) == (
            pytest.approx(1.0)
        )
        # Type II far pin lives at (g1-1, 0).
        assert exact_ir_probability(6, 6, NetType.TYPE_II, 5, 5, 0, 0) == (
            pytest.approx(1.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_ir_probability(6, 6, NetType.DEGENERATE, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            exact_ir_probability(1, 6, NetType.TYPE_I, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            exact_ir_probability(6, 6, NetType.TYPE_I, 3, 2, 0, 0)
        with pytest.raises(ValueError):
            exact_ir_probability(6, 6, NetType.TYPE_I, 0, 6, 0, 0)


class TestAgainstBruteForce:
    @staticmethod
    def brute_force(g1, g2, x1, x2, y1, y2):
        """Enumerate all monotone routes of a type-I net and count the
        fraction passing through the IR-grid."""
        from itertools import combinations

        total = 0
        hits = 0
        steps = g1 + g2 - 2
        for right_moves in combinations(range(steps), g1 - 1):
            x = y = 0
            visited = [(0, 0)]
            rights = set(right_moves)
            for s in range(steps):
                if s in rights:
                    x += 1
                else:
                    y += 1
                visited.append((x, y))
            total += 1
            if any(x1 <= vx <= x2 and y1 <= vy <= y2 for vx, vy in visited):
                hits += 1
        return hits / total

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 7),
        st.integers(2, 7),
        st.data(),
    )
    def test_matches_enumeration_type_i(self, g1, g2, data):
        x1 = data.draw(st.integers(0, g1 - 1))
        x2 = data.draw(st.integers(x1, g1 - 1))
        y1 = data.draw(st.integers(0, g2 - 1))
        y2 = data.draw(st.integers(y1, g2 - 1))
        expected = self.brute_force(g1, g2, x1, x2, y1, y2)
        actual = exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
        assert actual == pytest.approx(expected, rel=1e-9), (
            g1,
            g2,
            (x1, x2, y1, y2),
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 7), st.integers(2, 7), st.data())
    def test_type_ii_is_mirror_of_type_i(self, g1, g2, data):
        x1 = data.draw(st.integers(0, g1 - 1))
        x2 = data.draw(st.integers(x1, g1 - 1))
        y1 = data.draw(st.integers(0, g2 - 1))
        y2 = data.draw(st.integers(y1, g2 - 1))
        p2 = exact_ir_probability(g1, g2, NetType.TYPE_II, x1, x2, y1, y2)
        p1 = exact_ir_probability(
            g1, g2, NetType.TYPE_I, x1, x2, g2 - 1 - y2, g2 - 1 - y1
        )
        assert p2 == pytest.approx(p1, rel=1e-9)


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 12), st.integers(3, 12), st.data())
    def test_growing_grid_grows_probability(self, g1, g2, data):
        x1 = data.draw(st.integers(1, g1 - 1))
        x2 = data.draw(st.integers(x1, g1 - 1))
        y1 = data.draw(st.integers(1, g2 - 1))
        y2 = data.draw(st.integers(y1, g2 - 1))
        smaller = exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
        bigger = exact_ir_probability(
            g1, g2, NetType.TYPE_I, x1 - 1, x2, y1 - 1, y2
        )
        assert bigger >= smaller - 1e-12

    def test_probability_bounded(self):
        for x2 in range(6):
            for y2 in range(6):
                p = exact_ir_probability(6, 6, NetType.TYPE_I, 0, x2, 0, y2)
                assert 0.0 <= p <= 1.0
