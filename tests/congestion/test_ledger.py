"""Property tests for the committed-grid congestion ledger (PR 9).

Three contracts, all hypothesis-driven:

* chained ledger delta evaluations agree with a from-scratch reference
  model to 1e-12 across randomized move sequences that mix
  grid-preserving moves (pins shuffled among already-occupied lattice
  points, so the merged cut lines hold still and the O(dirty) path
  fires) with grid-changing ones (fresh lattice points force the full
  rebuild);
* the ``scatter_accumulate`` kernel matches ``np.add.at`` semantics --
  input-order accumulation with repeated indices -- on every backend
  that ships it;
* the selection-based ``_top_density_score`` equals the seed argsort
  greedy (:func:`area_weighted_top_fraction_mean`), including when the
  area target lands inside a group of equal-density cells.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import kernels, make_backend
from repro.congestion import IrregularGridModel
from repro.geometry import Rect
from repro.metrics.stats import area_weighted_top_fraction_mean
from repro.netlist import TwoPinArrays
from repro.perf import PerfRecorder

GRID = 30.0
CHIP = Rect(0, 0, 600, 600)
N_LATTICE = 21  # lattice points 0, 30, ..., 600


def _arrays(coords: np.ndarray) -> TwoPinArrays:
    """Edge arrays from an ``(n, 4)`` matrix of lattice indices."""
    pts = GRID * coords.astype(float)
    return TwoPinArrays(
        pts[:, 0].copy(), pts[:, 1].copy(),
        pts[:, 2].copy(), pts[:, 3].copy(),
        np.ones(len(coords)),
    )


@st.composite
def move_sequences(draw):
    """``(initial coords, [(dirty rows, new coords), ...])``.

    Coordinates are lattice indices.  Each move rewrites a nonempty
    dirty subset of the edges; grid-preserving moves draw the new
    coordinates from values already occupied elsewhere, grid-changing
    ones from the whole lattice.
    """
    n_edges = draw(st.integers(min_value=3, max_value=10))
    coord = st.integers(min_value=0, max_value=N_LATTICE - 1)
    coords = np.asarray(
        draw(
            st.lists(
                st.tuples(coord, coord, coord, coord),
                min_size=n_edges,
                max_size=n_edges,
            )
        ),
        dtype=np.int64,
    )
    n_moves = draw(st.integers(min_value=1, max_value=6))
    moves = []
    for _ in range(n_moves):
        dirty = sorted(
            draw(
                st.sets(
                    st.integers(0, n_edges - 1),
                    min_size=1,
                    max_size=n_edges,
                )
            )
        )
        preserving = draw(st.booleans())
        new = np.empty((len(dirty), 4), dtype=np.int64)
        for k in range(len(dirty)):
            for c in range(4):
                if preserving:
                    # Reuse an occupied lattice value: with every pin on
                    # an occupied point the merged cut lines often (not
                    # always -- the dirty edge may have been a value's
                    # only occupant) come out identical.
                    src_row = draw(st.integers(0, n_edges - 1))
                    src_col = draw(st.integers(0, 3))
                    new[k, c] = coords[src_row, src_col]
                else:
                    new[k, c] = draw(coord)
        moves.append((np.asarray(dirty, dtype=np.intp), new))
    return coords, moves


class TestLedgerParity:
    @settings(max_examples=60, deadline=None)
    @given(move_sequences())
    def test_chained_delta_matches_full(self, seq):
        coords, moves = seq
        model = IrregularGridModel(
            GRID, use_cache=True, use_ledger=True, ledger_refresh=4
        )
        reference = IrregularGridModel(GRID, use_cache=False, use_ledger=False)
        arr = _arrays(coords)
        score, ledger = model.estimate_arrays_ledger(CHIP, arr, None, None)
        full = reference.estimate_arrays(CHIP, arr)
        assert math.isclose(score, full, rel_tol=1e-12, abs_tol=1e-12)
        for dirty, new in moves:
            coords[dirty] = new
            arr = _arrays(coords)
            score, ledger = model.estimate_arrays_ledger(
                CHIP, arr, ledger, dirty
            )
            full = reference.estimate_arrays(CHIP, arr)
            assert math.isclose(score, full, rel_tol=1e-12, abs_tol=1e-12)

    def test_delta_path_fires_on_grid_preserving_move(self):
        # Two edges sharing every lattice value: moving edge 1 onto
        # edge 0's exact geometry keeps the occupied set -- and the
        # merged cut lines -- identical, so the move MUST take the
        # O(dirty) path, visibly via the counters.
        coords = np.array([[2, 2, 10, 10], [2, 10, 10, 2]], dtype=np.int64)
        model = IrregularGridModel(GRID, use_cache=True, use_ledger=True)
        model.perf = PerfRecorder()
        arr = _arrays(coords)
        _, ledger = model.estimate_arrays_ledger(CHIP, arr, None, None)
        assert ledger is not None
        coords[1] = coords[0]
        arr = _arrays(coords)
        dirty = np.array([1], dtype=np.intp)
        _, ledger = model.estimate_arrays_ledger(CHIP, arr, ledger, dirty)
        assert model.perf.counters.get("congestion_delta", 0) == 1
        assert model.perf.counters.get("ledger_hits", 0) == 1

    def test_refresh_limit_forces_rebuild(self):
        coords = np.array([[2, 2, 10, 10], [2, 10, 10, 2]], dtype=np.int64)
        model = IrregularGridModel(
            GRID, use_cache=True, use_ledger=True, ledger_refresh=2
        )
        model.perf = PerfRecorder()
        arr = _arrays(coords)
        _, ledger = model.estimate_arrays_ledger(CHIP, arr, None, None)
        dirty = np.array([1], dtype=np.intp)
        for _ in range(4):  # identical geometry: every grid matches
            _, ledger = model.estimate_arrays_ledger(CHIP, arr, ledger, dirty)
        # Ages 0 and 1 take the delta path; age 2 trips the refresh
        # limit, rebuilds (resetting age), then one more delta.
        assert model.perf.counters["congestion_delta"] == 3
        assert model.perf.counters["congestion_grid_rebuilt"] == 2


class TestScatterKernel:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=60,
        )
    )
    def test_matches_np_add_at(self, pairs):
        index = np.asarray([i for i, _ in pairs], dtype=np.int64)
        values = np.asarray([v for _, v in pairs])
        expected = np.zeros(16)
        np.add.at(expected, index, values)
        out = np.zeros(16)
        kernels.scatter_accumulate(index, values, out)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("backend_name", ["python", "numba", "numpy"])
    def test_backend_slot_agrees(self, backend_name):
        backend = make_backend(backend_name)
        index = np.array([0, 3, 0, 7, 3, 0], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        expected = np.zeros(8)
        np.add.at(expected, index, values)
        out = np.zeros(8)
        if backend.scatter_kernel is None:
            # The numpy backend (and numba's fallback when numba is not
            # installed) tells dispatch sites to keep using np.add.at.
            np.add.at(out, index, values)
        else:
            backend.scatter_kernel(index, values, out)
        np.testing.assert_array_equal(out, expected)


class TestSelectionScoring:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(
                # Quantized densities force heavy tie groups.
                st.integers(min_value=0, max_value=8),
                st.floats(min_value=0.1, max_value=50.0),
            ),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.02, max_value=1.0),
    )
    def test_matches_argsort_greedy(self, cells, fraction):
        density = np.asarray([float(d) for d, _ in cells])
        areas = np.asarray([a for _, a in cells])
        model = IrregularGridModel(GRID, top_fraction=fraction)
        got = model._top_density_score(density, areas)
        want = area_weighted_top_fraction_mean(
            list(zip(density.tolist(), areas.tolist())), fraction
        )
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)

    def test_tie_group_straddles_target(self):
        # 10 equal-density cells, target inside the group: the score is
        # the tied density exactly, whichever cells are "chosen".
        density = np.full(100, 3.0)
        areas = np.ones(100)
        model = IrregularGridModel(GRID, top_fraction=0.155)
        assert model._top_density_score(density, areas) == pytest.approx(3.0)
