"""Tests for the full Irregular-Grid model (Algorithm 4.6)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import IrregularGridModel
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 900, 900)


def net(x1, y1, x2, y2, name="n", weight=1.0):
    return TwoPinNet(name, Point(x1, y1), Point(x2, y2), weight=weight)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IrregularGridModel(0.0)
        with pytest.raises(ValueError):
            IrregularGridModel(30.0, method="bogus")
        with pytest.raises(ValueError):
            IrregularGridModel(30.0, top_fraction=2.0)


class TestSingleNetSemantics:
    def test_pin_cells_get_probability_one(self):
        model = IrregularGridModel(30.0, merge_factor=0.0)
        nets = [net(0, 0, 600, 600)]
        cmap, irgrid = model.evaluate_with_grid(CHIP, nets)
        mass = {
            (i, j): cell.mass
            for (i, j, _), cell in zip(irgrid.cells(), cmap.cells)
        }
        col = irgrid.x_lines.nearest_line_index(0.0)
        row = irgrid.y_lines.nearest_line_index(0.0)
        assert mass[(col, row)] == pytest.approx(1.0)

    def test_degenerate_net_all_cells_one(self):
        model = IrregularGridModel(30.0, merge_factor=0.0)
        nets = [net(0, 300, 900, 300)]
        cmap, _ = model.evaluate_with_grid(CHIP, nets)
        nonzero = [c for c in cmap.cells if c.mass > 0]
        assert nonzero
        assert all(c.mass == pytest.approx(1.0) for c in nonzero)

    def test_weight_scales(self):
        heavy = IrregularGridModel(30.0).evaluate(
            CHIP, [net(0, 0, 600, 600, weight=4.0)]
        )
        light = IrregularGridModel(30.0).evaluate(CHIP, [net(0, 0, 600, 600)])
        assert heavy.total_mass == pytest.approx(4.0 * light.total_mass)

    def test_exact_and_approx_methods_agree(self):
        rng = random.Random(0)
        nets = [
            net(
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                f"n{i}",
            )
            for i in range(25)
        ]
        exact = IrregularGridModel(30.0, method="exact")
        approx = IrregularGridModel(30.0, method="approx")
        se = exact.estimate(CHIP, nets)
        sa = approx.estimate(CHIP, nets)
        assert sa == pytest.approx(se, rel=0.08)

    def test_estimate_equals_score_of_evaluate(self):
        rng = random.Random(1)
        nets = [
            net(
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                f"n{i}",
            )
            for i in range(15)
        ]
        model = IrregularGridModel(30.0)
        fast = model.estimate(CHIP, nets)
        slow = model.score(model.evaluate(CHIP, nets))
        assert fast == pytest.approx(slow, rel=1e-12)


class TestMapInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 25))
    def test_masses_bounded_by_net_count(self, seed, n_nets):
        rng = random.Random(seed)
        nets = [
            net(
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                f"n{i}",
            )
            for i in range(n_nets)
        ]
        model = IrregularGridModel(40.0)
        cmap = model.evaluate(CHIP, nets)
        assert all(-1e-9 <= c.mass <= n_nets + 1e-9 for c in cmap.cells)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batched_matches_per_net_reference(self, seed):
        rng = random.Random(seed)
        nets = [
            net(
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                rng.uniform(0, 900),
                f"n{i}",
            )
            for i in range(12)
        ]
        model = IrregularGridModel(35.0)
        from repro.congestion.irgrid import build_irgrid

        irgrid = build_irgrid(CHIP, nets, 35.0, 2.0)
        reference = np.zeros((irgrid.n_columns, irgrid.n_rows))
        for n in nets:
            model._add_net(irgrid, n, reference)
        from repro.congestion.batched import batched_approx_mass

        batched = batched_approx_mass(irgrid, nets, 35.0)
        assert np.abs(batched - reference).max() < 1e-9

    def test_empty_nets(self):
        model = IrregularGridModel(30.0)
        assert model.estimate(CHIP, []) == 0.0

    def test_score_monotone_in_added_nets(self):
        model = IrregularGridModel(30.0)
        base = [net(100, 100, 700, 600, "a")]
        more = base + [net(120, 90, 710, 620, "b")]
        # Adding an overlapping net cannot reduce the congestion score
        # (with merge_factor 0 the cut lines of the base net persist).
        m0 = IrregularGridModel(30.0, merge_factor=0.0)
        assert m0.estimate(CHIP, more) >= m0.estimate(CHIP, base) - 1e-9


class TestHotspotLocalization:
    def test_cluster_is_hotter_than_background(self):
        """Nets concentrated in one corner must produce their density
        peak inside that corner -- the Figure 4 scenario."""
        cluster = [
            net(600 + 10 * i, 600 + 7 * i, 880 - 5 * i, 880 - 9 * i, f"c{i}")
            for i in range(8)
        ]
        lone = net(30, 700, 250, 880, "lone")
        model = IrregularGridModel(30.0)
        cmap = model.evaluate(CHIP, cluster + [lone])
        hot = max(cmap.cells, key=lambda c: c.density)
        center = hot.rect.center
        assert center.x > 450 and center.y > 450
