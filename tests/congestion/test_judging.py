"""Tests for the judging model wrapper."""

import pytest

from repro.congestion import JudgingModel
from repro.floorplan import Floorplan
from repro.geometry import Rect
from repro.netlist import Module, Net, Netlist


def tiny_instance():
    modules = [Module("a", 40, 40), Module("b", 40, 40), Module("c", 40, 40)]
    nets = [Net("n0", ("a", "b")), Net("n1", ("b", "c")), Net("n2", ("a", "c"))]
    netlist = Netlist("tiny", modules, nets)
    floorplan = Floorplan(
        {
            "a": Rect(0, 0, 40, 40),
            "b": Rect(40, 0, 80, 40),
            "c": Rect(0, 40, 40, 80),
        },
        chip=Rect(0, 0, 80, 80),
    )
    return floorplan, netlist


class TestJudging:
    def test_scalar_judge_positive(self):
        floorplan, netlist = tiny_instance()
        judge = JudgingModel(grid_size=10.0)
        cost = judge.judge(floorplan, netlist)
        assert cost > 0.0

    def test_judge_matches_map_score(self):
        floorplan, netlist = tiny_instance()
        judge = JudgingModel(grid_size=10.0)
        cmap = judge.judge_map(floorplan, netlist)
        assert judge.judge(floorplan, netlist) == pytest.approx(
            cmap.top_mass_score(0.1)
        )

    def test_finer_judges_see_same_ordering(self):
        """Different judging pitches must agree on which of two
        floorplans is more congested when the difference is gross."""
        floorplan, netlist = tiny_instance()
        spread = Floorplan(
            {
                "a": Rect(0, 0, 40, 40),
                "b": Rect(160, 0, 200, 40),
                "c": Rect(0, 160, 40, 200),
            },
            chip=Rect(0, 0, 200, 200),
        )
        for pitch in (5.0, 10.0):
            judge = JudgingModel(grid_size=pitch)
            dense_cost = judge.judge(floorplan, netlist)
            spread_cost = judge.judge(spread, netlist)
            assert dense_cost >= spread_cost * 0.5

    def test_grid_size_property(self):
        assert JudgingModel(grid_size=25.0).grid_size == 25.0
