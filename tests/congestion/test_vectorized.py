"""Kernel-vs-reference tests for the numpy evaluation paths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import (
    ApproximationDomainError,
    approx_ir_probability,
    exact_ir_probability,
)
from repro.congestion.vectorized import approx_ir_matrix, exact_ir_matrix
from repro.netlist import NetType


def _spans(data, g, label):
    n = data.draw(st.integers(1, 4), label=f"n_{label}")
    spans = []
    lo = 0
    for _ in range(n):
        if lo > g - 1:
            break
        a = data.draw(st.integers(lo, g - 1), label=f"{label}_a")
        b = data.draw(st.integers(a, g - 1), label=f"{label}_b")
        spans.append((a, b))
        lo = b + 1
    return spans or [(0, g - 1)]


class TestExactMatrix:
    def test_figure6(self):
        m = exact_ir_matrix(6, 6, NetType.TYPE_I, [(1, 3)], [(1, 4)])
        assert m[0, 0] == pytest.approx(245 / 252)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(2, 15),
        st.integers(2, 15),
        st.sampled_from([NetType.TYPE_I, NetType.TYPE_II]),
        st.data(),
    )
    def test_matches_scalar_reference(self, g1, g2, nt, data):
        col_spans = _spans(data, g1, "col")
        row_spans = _spans(data, g2, "row")
        matrix = exact_ir_matrix(g1, g2, nt, col_spans, row_spans)
        assert matrix.shape == (len(row_spans), len(col_spans))
        for j, (y1, y2) in enumerate(row_spans):
            for i, (x1, x2) in enumerate(col_spans):
                ref = exact_ir_probability(g1, g2, nt, x1, x2, y1, y2)
                assert matrix[j, i] == pytest.approx(ref, abs=1e-10)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            exact_ir_matrix(4, 4, NetType.DEGENERATE, [(0, 0)], [(0, 0)])


class TestApproxMatrix:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(4, 20),
        st.integers(4, 20),
        st.sampled_from([NetType.TYPE_I, NetType.TYPE_II]),
        st.data(),
    )
    def test_matches_scalar_reference(self, g1, g2, nt, data):
        col_spans = _spans(data, g1, "col")
        row_spans = _spans(data, g2, "row")
        matrix, invalid = approx_ir_matrix(g1, g2, nt, col_spans, row_spans)
        for j, (y1, y2) in enumerate(row_spans):
            for i, (x1, x2) in enumerate(col_spans):
                try:
                    ref = approx_ir_probability(g1, g2, nt, x1, x2, y1, y2)
                except ApproximationDomainError:
                    assert invalid[j, i], (g1, g2, nt, x1, x2, y1, y2)
                    continue
                if not invalid[j, i]:
                    assert matrix[j, i] == pytest.approx(ref, abs=1e-10)

    def test_invalid_flags_far_corner(self):
        _, invalid = approx_ir_matrix(
            8, 8, NetType.TYPE_I, [(6, 7)], [(6, 7)]
        )
        assert invalid[0, 0]

    def test_panels_validation(self):
        with pytest.raises(ValueError):
            approx_ir_matrix(8, 8, NetType.TYPE_I, [(1, 2)], [(1, 2)], panels=3)

    def test_values_clipped_to_unit_interval(self):
        matrix, _ = approx_ir_matrix(
            12, 12, NetType.TYPE_I, [(0, 11)], [(0, 11)]
        )
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= 1.0)
