"""Tests for CongestionCell / CongestionMap."""

import pytest

from repro.congestion import CongestionCell, CongestionMap
from repro.geometry import Rect

CHIP = Rect(0, 0, 10, 10)


def uniform_map(masses):
    """One row of unit cells with the given masses."""
    cells = [
        CongestionCell(Rect(i, 0, i + 1, 1), m) for i, m in enumerate(masses)
    ]
    return CongestionMap(Rect(0, 0, len(masses), 1), cells)


class TestCell:
    def test_density(self):
        cell = CongestionCell(Rect(0, 0, 2, 5), mass=20.0)
        assert cell.density == 2.0

    def test_zero_area_density(self):
        cell = CongestionCell(Rect(0, 0, 0, 5), mass=3.0)
        assert cell.density == 0.0

    def test_default_mass(self):
        assert CongestionCell(Rect(0, 0, 1, 1)).mass == 0.0


class TestMap:
    def test_requires_cells(self):
        with pytest.raises(ValueError):
            CongestionMap(CHIP, [])

    def test_aggregates(self):
        cmap = uniform_map([1.0, 3.0, 2.0])
        assert cmap.n_cells == 3
        assert cmap.total_mass == 6.0
        assert cmap.max_mass == 3.0
        assert cmap.max_density == 3.0
        assert cmap.densities() == [1.0, 3.0, 2.0]

    def test_top_mass_score(self):
        cmap = uniform_map([float(i) for i in range(10)])
        assert cmap.top_mass_score(0.2) == pytest.approx((9 + 8) / 2)

    def test_top_density_score_uniform_cells(self):
        cmap = uniform_map([float(i) for i in range(10)])
        assert cmap.top_density_score(0.2) == pytest.approx((9 + 8) / 2)

    def test_top_density_score_unequal_cells(self):
        # A big cold cell and a tiny hot cell: the top-10%-area score
        # blends the hot cell's density with the next densest area.
        cells = [
            CongestionCell(Rect(0, 0, 9, 1), mass=9.0),  # density 1
            CongestionCell(Rect(9, 0, 10, 1), mass=5.0),  # density 5
        ]
        cmap = CongestionMap(Rect(0, 0, 10, 1), cells)
        assert cmap.top_density_score(0.1) == pytest.approx(5.0)
        # Widening to 50% of the area mixes in the cold density.
        expected = (5.0 * 1.0 + 1.0 * 4.0) / 5.0
        assert cmap.top_density_score(0.5) == pytest.approx(expected)

    def test_cells_over(self):
        cmap = uniform_map([0.5, 2.5, 1.5])
        assert len(cmap.cells_over(1.0)) == 2
        assert len(cmap.cells_over(10.0)) == 0

    def test_repr(self):
        assert "cells" in repr(uniform_map([1.0]))
