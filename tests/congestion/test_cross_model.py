"""Cross-model consistency: the model zoo must agree on orderings.

Each congestion model measures different units (route mass, wire
demand, density), but on the same instances they must agree on the
*direction* of congestion differences -- otherwise at least one of them
is broken.  These tests pin those relationships.
"""

import random

import pytest

from repro.congestion import (
    BendWeightedModel,
    FixedGridModel,
    IrregularGridModel,
    RudyModel,
)
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet
from repro.routing.overflow import rank_correlation

CHIP = Rect(0, 0, 400, 400)


def random_instance(seed, n=15):
    rng = random.Random(seed)
    return [
        TwoPinNet(
            f"n{i}",
            Point(rng.uniform(0, 400), rng.uniform(0, 400)),
            Point(rng.uniform(0, 400), rng.uniform(0, 400)),
        )
        for i in range(n)
    ]


class TestTotals:
    def test_rudy_total_is_total_hpwl(self):
        # Each net's integrated demand equals its bbox half-perimeter
        # (its HPWL); restrict to nets wide enough to skip fattening.
        nets = [
            n
            for n in random_instance(0)
            if n.routing_range.width >= 20.0 and n.routing_range.height >= 20.0
        ]
        grid = RudyModel(20.0).evaluate_array(CHIP, nets)
        hpwl = sum(n.routing_range.half_perimeter for n in nets)
        assert grid.sum() == pytest.approx(hpwl, rel=1e-9)

    def test_bendweighted_conserves_fixed_totals(self):
        nets = random_instance(1)
        fixed = FixedGridModel(20.0).evaluate_array(CHIP, nets)
        bendy = BendWeightedModel(20.0, bend_weight=0.4).evaluate_array(
            CHIP, nets
        )
        # Total crossing mass (anti-diagonal count) is distribution-free.
        assert bendy.sum() == pytest.approx(fixed.sum(), rel=1e-9)


class TestScoreOrderings:
    def _scores(self, model_factory, estimator):
        values = []
        for seed in range(8):
            nets = random_instance(seed, n=12)
            values.append(estimator(model_factory(), nets))
        return values

    def test_fixed_and_bendweighted_rank_alike(self):
        fixed_scores = self._scores(
            lambda: FixedGridModel(25.0),
            lambda m, nets: m.estimate_fast(CHIP, nets),
        )
        bend_scores = self._scores(
            lambda: BendWeightedModel(25.0, bend_weight=0.5),
            lambda m, nets: m.score(m.evaluate(CHIP, nets)),
        )
        assert rank_correlation(fixed_scores, bend_scores) > 0.7

    def test_ir_and_fixed_rank_alike(self):
        """On instances whose congestion levels genuinely differ (net
        count swept 4..32), the IR density score and the fixed mass
        score must rank them the same way.  (On near-identical random
        instances the two scores diverge within noise -- they measure
        different units.)"""
        ir_scores = []
        fixed_scores = []
        for k, n in enumerate((4, 8, 12, 16, 20, 24, 28, 32)):
            nets = random_instance(k, n=n)
            ir_scores.append(IrregularGridModel(25.0).estimate(CHIP, nets))
            fixed_scores.append(FixedGridModel(25.0).estimate_fast(CHIP, nets))
        assert rank_correlation(ir_scores, fixed_scores) > 0.7

    def test_all_models_prefer_the_spread_instance(self):
        """A piled instance must out-score a spread instance under
        every model."""
        piled = [
            TwoPinNet(f"p{i}", Point(150, 150), Point(250, 250))
            for i in range(6)
        ]
        spread = [
            TwoPinNet(f"s{i}", Point(20 + 60 * i, 20), Point(50 + 60 * i, 380))
            for i in range(6)
        ]
        models = [
            (FixedGridModel(25.0), lambda m, ns: m.estimate_fast(CHIP, ns)),
            (RudyModel(25.0), lambda m, ns: m.estimate_fast(CHIP, ns)),
            (
                BendWeightedModel(25.0, 0.5),
                lambda m, ns: m.score(m.evaluate(CHIP, ns)),
            ),
            (IrregularGridModel(25.0), lambda m, ns: m.estimate(CHIP, ns)),
        ]
        for model, estimator in models:
            assert estimator(model, piled) > estimator(model, spread), type(
                model
            ).__name__
