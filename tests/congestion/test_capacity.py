"""Tests for the routability (capacity) estimator."""

import pytest

from repro.congestion import (
    CongestionCell,
    CongestionMap,
    FixedGridModel,
    estimate_routability,
)
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 100, 100)


def uniform_map(masses, pitch=10.0):
    cells = []
    n = len(masses)
    for i, m in enumerate(masses):
        x = (i % 10) * pitch
        y = (i // 10) * pitch
        cells.append(CongestionCell(Rect(x, y, x + pitch, y + pitch), m))
    return CongestionMap(Rect(0, 0, 100, 100), cells)


class TestEstimate:
    def test_under_capacity_routable(self):
        cmap = uniform_map([1.0] * 100)
        # supply = 1 track/um * 10 um = 10 >> demand 1.
        est = estimate_routability(cmap, tracks_per_um=1.0)
        assert est.is_routable
        assert est.total_overflow == 0.0
        assert est.max_utilization == pytest.approx(0.1)

    def test_overflow_counted(self):
        masses = [0.0] * 99 + [25.0]
        cmap = uniform_map(masses)
        est = estimate_routability(cmap, tracks_per_um=1.0)
        assert not est.is_routable
        assert est.n_overflowed_cells == 1
        assert est.total_overflow == pytest.approx(15.0)
        assert est.overflow_fraction == pytest.approx(0.01)

    def test_utilization_target_scales_supply(self):
        cmap = uniform_map([8.0] * 100)
        generous = estimate_routability(cmap, 1.0, utilization_target=1.0)
        tight = estimate_routability(cmap, 1.0, utilization_target=0.5)
        assert generous.is_routable
        assert not tight.is_routable

    def test_rejects_mixed_pitch_maps(self):
        cells = [
            CongestionCell(Rect(0, 0, 10, 10), 1.0),
            CongestionCell(Rect(10, 0, 60, 10), 1.0),  # 5x wider
        ]
        cmap = CongestionMap(Rect(0, 0, 60, 10), cells)
        with pytest.raises(ValueError, match="equal-pitch"):
            estimate_routability(cmap, 1.0)

    def test_validation(self):
        cmap = uniform_map([1.0] * 100)
        with pytest.raises(ValueError):
            estimate_routability(cmap, 0.0)
        with pytest.raises(ValueError):
            estimate_routability(cmap, 1.0, utilization_target=0.0)


class TestCrossValidationWithRouter:
    def test_estimator_and_router_agree_on_feasibility(self):
        """The probabilistic screen and the negotiated router must agree
        on clearly-routable and clearly-unroutable instances."""
        from repro.routing import NegotiatedRouter, RoutingGrid

        nets_easy = [
            TwoPinNet(f"e{i}", Point(5 + 10 * i, 5), Point(5 + 10 * i, 95))
            for i in range(5)
        ]
        # 30 identical nets through one corridor: hopeless at capacity 2.
        nets_hard = [
            TwoPinNet(f"h{i}", Point(45, 5), Point(55, 95)) for i in range(30)
        ]
        model = FixedGridModel(10.0)
        for nets, expect_routable in ((nets_easy, True), (nets_hard, False)):
            cmap = model.evaluate(CHIP, nets)
            est = estimate_routability(
                cmap, tracks_per_um=0.2
            )  # supply 2/cell
            grid = RoutingGrid(CHIP, 10.0, capacity=2)
            result = NegotiatedRouter(grid, max_iterations=6).route(nets)
            assert est.is_routable == expect_routable
            assert result.converged == expect_routable
