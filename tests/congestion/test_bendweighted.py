"""Tests for the bend-weighted route distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import (
    BendWeightedModel,
    bend_weighted_table,
    probability_table,
)
from repro.geometry import Point, Rect
from repro.netlist import NetType, TwoPinNet

CHIP = Rect(0, 0, 100, 100)
dims = st.integers(2, 12)


class TestTable:
    @given(dims, dims)
    def test_lambda_one_reproduces_formula2(self, g1, g2):
        table = bend_weighted_table(g1, g2, NetType.TYPE_I, 1.0)
        reference = np.array(probability_table(g1, g2, NetType.TYPE_I))
        assert np.abs(table - reference).max() < 1e-12

    @given(dims, dims, st.floats(0.05, 1.0))
    def test_antidiagonal_conservation(self, g1, g2, lam):
        """Every route crosses every anti-diagonal once regardless of
        the bend weighting, so each anti-diagonal sums to 1."""
        table = bend_weighted_table(g1, g2, NetType.TYPE_I, lam)
        for d in range(g1 + g2 - 1):
            s = sum(
                table[x, d - x]
                for x in range(max(0, d - g2 + 1), min(g1, d + 1))
            )
            assert s == pytest.approx(1.0, rel=1e-9)

    def test_lambda_to_zero_gives_l_shapes(self):
        table = bend_weighted_table(6, 6, NetType.TYPE_I, 1e-9)
        # Interior cells get (asymptotically) nothing ...
        assert table[1:-1, 1:-1].max() < 1e-6
        # ... and the two L borders split the mass evenly.
        assert table[0, 3] == pytest.approx(0.5, abs=1e-6)
        assert table[3, 0] == pytest.approx(0.5, abs=1e-6)
        assert table[0, 0] == pytest.approx(1.0)
        assert table[5, 5] == pytest.approx(1.0)

    def test_smaller_lambda_pushes_mass_outward(self):
        uniform = bend_weighted_table(8, 8, NetType.TYPE_I, 1.0)
        bendy = bend_weighted_table(8, 8, NetType.TYPE_I, 0.3)
        center = (slice(2, 6), slice(2, 6))
        assert bendy[center].sum() < uniform[center].sum()

    @given(dims, dims, st.floats(0.1, 1.0))
    def test_type_ii_is_mirror(self, g1, g2, lam):
        t1 = bend_weighted_table(g1, g2, NetType.TYPE_I, lam)
        t2 = bend_weighted_table(g1, g2, NetType.TYPE_II, lam)
        assert np.allclose(t2, t1[:, ::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            bend_weighted_table(0, 4, NetType.TYPE_I, 0.5)
        with pytest.raises(ValueError):
            bend_weighted_table(4, 4, NetType.TYPE_I, 0.0)
        with pytest.raises(ValueError):
            bend_weighted_table(4, 4, NetType.TYPE_I, 1.5)
        with pytest.raises(ValueError):
            bend_weighted_table(4, 4, NetType.DEGENERATE, 0.5)

    def test_thin_range_all_ones(self):
        assert np.allclose(
            bend_weighted_table(1, 6, NetType.TYPE_I, 0.4), 1.0
        )


class TestModel:
    def test_matches_fixed_grid_at_lambda_one(self):
        from repro.congestion import FixedGridModel

        nets = [
            TwoPinNet("a", Point(5, 5), Point(75, 55)),
            TwoPinNet("b", Point(15, 85), Point(95, 15)),
        ]
        bend = BendWeightedModel(10.0, bend_weight=1.0)
        fixed = FixedGridModel(10.0)
        assert np.allclose(
            bend.evaluate_array(CHIP, nets),
            fixed.evaluate_array(CHIP, nets),
            atol=1e-12,
        )

    def test_degenerate_nets_unit_mass(self):
        model = BendWeightedModel(10.0, bend_weight=0.5)
        grid = model.evaluate_array(
            CHIP, [TwoPinNet("h", Point(5, 25), Point(65, 25))]
        )
        assert grid.sum() == pytest.approx(7.0)

    def test_map_and_score(self):
        model = BendWeightedModel(10.0, bend_weight=0.5)
        nets = [TwoPinNet("a", Point(5, 5), Point(95, 95))]
        cmap = model.evaluate(CHIP, nets)
        assert model.score(cmap) > 0
        total_area = sum(c.rect.area for c in cmap.cells)
        assert total_area == pytest.approx(CHIP.area)

    def test_validation(self):
        with pytest.raises(ValueError):
            BendWeightedModel(0.0)
        with pytest.raises(ValueError):
            BendWeightedModel(10.0, bend_weight=2.0)
        with pytest.raises(ValueError):
            BendWeightedModel(10.0, top_fraction=0.0)
