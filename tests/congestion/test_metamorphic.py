"""Metamorphic properties of the congestion models.

These test *relations between runs* rather than absolute values:

* translating the whole instance (chip + nets) must not change any
  score -- the models see only relative geometry;
* uniformly scaling the instance *and* the grid pitch must not change
  any score -- the route model is resolution-relative;
* net order must not matter -- accumulation is a sum;
* duplicating every net doubles every cell's mass.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.congestion import FixedGridModel, IrregularGridModel
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

CHIP = Rect(0, 0, 800, 600)


def random_nets(seed, n):
    rng = random.Random(seed)
    return [
        TwoPinNet(
            f"n{i}",
            Point(rng.uniform(0, 800), rng.uniform(0, 600)),
            Point(rng.uniform(0, 800), rng.uniform(0, 600)),
        )
        for i in range(n)
    ]


def translated_instance(nets, dx, dy):
    chip = CHIP.translated(dx, dy)
    return chip, [n.translated(dx, dy) for n in nets]


MODELS = [
    lambda: IrregularGridModel(40.0),
    lambda: IrregularGridModel(40.0, method="exact"),
    lambda: FixedGridModel(40.0),
]


class TestTranslationInvariance:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(0, 1000),
        st.floats(-5000, 5000),
        st.floats(-5000, 5000),
    )
    def test_scores_translation_invariant(self, seed, dx, dy):
        nets = random_nets(seed, 10)
        chip_t, nets_t = translated_instance(nets, dx, dy)
        for make in MODELS:
            model = make()
            if isinstance(model, FixedGridModel):
                base = model.estimate_fast(CHIP, nets)
                moved = model.estimate_fast(chip_t, nets_t)
            else:
                base = model.estimate(CHIP, nets)
                moved = model.estimate(chip_t, nets_t)
            assert moved == pytest.approx(base, rel=1e-9, abs=1e-12), type(
                model
            )


class TestScaleInvariance:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 1000), st.floats(0.1, 20.0))
    def test_fixed_grid_mass_scale_invariant(self, seed, factor):
        """Scaling geometry and pitch together preserves the cell
        structure, hence all masses and the mass-based score."""
        nets = random_nets(seed, 8)
        scaled_chip = Rect(0, 0, CHIP.x_hi * factor, CHIP.y_hi * factor)
        scaled_nets = [
            TwoPinNet(
                n.name,
                Point(n.p1.x * factor, n.p1.y * factor),
                Point(n.p2.x * factor, n.p2.y * factor),
            )
            for n in nets
        ]
        base = FixedGridModel(40.0).estimate_fast(CHIP, nets)
        scaled = FixedGridModel(40.0 * factor).estimate_fast(
            scaled_chip, scaled_nets
        )
        assert scaled == pytest.approx(base, rel=1e-6)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 1000), st.floats(0.1, 20.0))
    def test_irgrid_density_scales_inverse_square(self, seed, factor):
        """The IR score is a density (mass per area): scaling the
        instance by f scales the score by 1/f^2."""
        nets = random_nets(seed, 8)
        scaled_chip = Rect(0, 0, CHIP.x_hi * factor, CHIP.y_hi * factor)
        scaled_nets = [
            TwoPinNet(
                n.name,
                Point(n.p1.x * factor, n.p1.y * factor),
                Point(n.p2.x * factor, n.p2.y * factor),
            )
            for n in nets
        ]
        base = IrregularGridModel(40.0).estimate(CHIP, nets)
        scaled = IrregularGridModel(40.0 * factor).estimate(
            scaled_chip, scaled_nets
        )
        assert scaled * factor**2 == pytest.approx(base, rel=1e-6)


class TestStructuralProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_net_order_irrelevant(self, seed):
        nets = random_nets(seed, 12)
        shuffled = list(nets)
        random.Random(seed + 1).shuffle(shuffled)
        for make in MODELS:
            model = make()
            if isinstance(model, FixedGridModel):
                a = model.estimate_fast(CHIP, nets)
                b = model.estimate_fast(CHIP, shuffled)
            else:
                a = model.estimate(CHIP, nets)
                b = model.estimate(CHIP, shuffled)
            assert a == pytest.approx(b, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_duplicating_nets_doubles_masses(self, seed):
        nets = random_nets(seed, 6)
        doubled = nets + [
            TwoPinNet(n.name + "_copy", n.p1, n.p2) for n in nets
        ]
        model = IrregularGridModel(40.0)
        base_map = model.evaluate(CHIP, nets)
        doubled_map = model.evaluate(CHIP, doubled)
        assert doubled_map.total_mass == pytest.approx(
            2.0 * base_map.total_mass, rel=1e-9
        )
