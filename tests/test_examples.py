"""The examples must actually run (in-process, smallest circuit)."""

import runpy
import sys
from unittest import mock

import pytest

EXAMPLES = "examples"


def run_example(path, argv):
    with mock.patch.object(sys, "argv", argv):
        runpy.run_path(path, run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example(f"{EXAMPLES}/quickstart.py", ["quickstart.py", "hp"])
        out = capsys.readouterr().out
        assert "Irregular-Grid model" in out
        assert "Judging model" in out

    def test_model_accuracy_study(self, capsys):
        run_example(
            f"{EXAMPLES}/model_accuracy_study.py", ["model_accuracy_study.py"]
        )
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "speedup" in out

    def test_hotspot_analysis(self, capsys):
        run_example(
            f"{EXAMPLES}/hotspot_analysis.py", ["hotspot_analysis.py", "hp"]
        )
        out = capsys.readouterr().out
        assert "Hotspot report" in out
        assert "dominating" in out

    @pytest.mark.slow
    def test_congestion_aware_floorplanning(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_example(
            str(
                __import__("pathlib").Path(__file__).parent.parent
                / EXAMPLES
                / "congestion_aware_floorplanning.py"
            ),
            ["congestion_aware_floorplanning.py", "hp"],
        )
        out = capsys.readouterr().out
        assert "Judged congestion change" in out
        assert (tmp_path / "examples_output" / "hp_blind.svg").exists()

    @pytest.mark.slow
    def test_representation_comparison(self, capsys):
        run_example(
            f"{EXAMPLES}/representation_comparison.py",
            ["representation_comparison.py", "hp"],
        )
        out = capsys.readouterr().out
        assert "Three floorplanners" in out
        assert "B*-tree" in out

    @pytest.mark.slow
    def test_routability_validation(self, capsys):
        run_example(
            f"{EXAMPLES}/routability_validation.py",
            ["routability_validation.py", "hp"],
        )
        out = capsys.readouterr().out
        assert "rank corr" in out
