"""Extension bench: the capacity screen vs the negotiated router.

Sweeps track capacity on one floorplan and compares where the
probabilistic routability screen (:func:`estimate_routability`) flips
to "unroutable" against where the negotiated router actually fails to
converge -- the screen is useful exactly when those thresholds agree.
"""

import random

from repro.congestion import FixedGridModel, estimate_routability
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.pins import assign_pins
from repro.routing import NegotiatedRouter, RoutingGrid

CELL = 50.0
CAPACITIES = (2, 4, 8, 16, 32)


def _instance():
    circuit = load_mcnc("ami33")
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(1)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, 30.0)
    return floorplan, assignment.two_pin_nets


def test_capacity_threshold_sweep(benchmark, record_artifact):
    floorplan, nets = _instance()
    cmap = FixedGridModel(CELL).evaluate(floorplan.chip, nets)

    rows = []
    agreements = 0
    for capacity in CAPACITIES:
        est = estimate_routability(
            cmap, tracks_per_um=capacity / CELL
        )
        grid = RoutingGrid(floorplan.chip, cell_size=CELL, capacity=capacity)
        result = NegotiatedRouter(grid, max_iterations=6).route(nets)
        agree = est.is_routable == result.converged
        agreements += agree
        rows.append(
            [
                capacity,
                "yes" if est.is_routable else "no",
                f"{est.total_overflow:.1f}",
                "yes" if result.converged else "no",
                f"{result.total_overflow:.0f}",
                "agree" if agree else "DISAGREE",
            ]
        )
    text = format_table(
        [
            "capacity (tracks/edge)",
            "screen routable?",
            "screen overflow",
            "router converged?",
            "routed overflow",
            "verdict",
        ],
        rows,
        title="Capacity screen vs negotiated router (ami33, one floorplan)",
    )
    record_artifact("capacity_sweep", text)

    # Both must agree at the extremes; mid-range may differ by one step
    # (the screen ignores blockage/ordering effects).
    assert rows[0][-1] == "agree" or rows[1][-1] == "agree"
    assert rows[-1][-1] == "agree"
    assert agreements >= len(CAPACITIES) - 1

    benchmark(
        estimate_routability, cmap, CAPACITIES[2] / CELL
    )
