#!/usr/bin/env python
"""Benchmark the search drivers against best-of-N multistart.

For each workload (ami33/ami49-scale synthetic circuits, congestion
term enabled at gamma=1.0) the script gives every driver the **same
move budget**:

* ``multistart``: best-of-N independent restarts, N = total portfolio
  legs -- the repository's previous search behavior;
* ``portfolio``: the representation race (polish/sp/btree arms, slot
  reallocation to the leading arms, elite continuation and cross-
  representation migration between rounds);
* ``tempering``: replica exchange, with its sweep count solved so the
  replicas spend the same total moves as the other two.

Every leg/restart runs the identical geometric schedule and
moves-per-temperature, and the schedule's step count is fixed by its
``cooling_rate``/``freeze_ratio`` (no acceptance-based early exit), so
equal legs means equal moves -- the wall-clock comparison is
apples-to-apples and both are recorded.

Gates (exit non-zero when violated):

* ``equal_budget``  -- multistart and portfolio executed the same
  total moves to within 2% of the scheduled budget (representations
  may skip a handful of degenerate moves);
* ``results_agree`` -- a reduced portfolio run is bit-identical
  sequentially and on a 2-worker pool (same best cost, same ledger);
* ``strict_ok``     -- a short strict-mode portfolio run
  (``strict_incremental=True``, every delta evaluation re-checked
  against the full pipeline) raises nothing;
* ``portfolio_beats_multistart`` on the ami49-scale workload.

Results go to ``BENCH_portfolio.json`` (see ``--out``).  ``--smoke``
runs a reduced schedule and skips writing by default -- cheap enough
for CI.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.anneal.schedule import GeometricSchedule  # noqa: E402
from repro.engine import DriverConfig, ObjectiveSpec, make_driver  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402

ARMS = ("polish", "sp", "btree")


def _schedule_steps(schedule: GeometricSchedule) -> int:
    """The schedule's step count (independent of the starting
    temperature: freezing is ratio-based)."""
    return sum(1 for _ in schedule.temperatures(1.0))


def _timed_run(driver):
    t0 = time.perf_counter()
    result = driver.run()
    return result, time.perf_counter() - t0


def bench_workload(name, n_modules, n_nets, smoke, seed=7):
    netlist = random_circuit(n_modules, n_nets, seed=seed)
    grid_size = max(math.sqrt(netlist.total_module_area) / 30.0, 1e-6)
    spec = ObjectiveSpec(gamma=1.0, congestion_grid_size=grid_size)
    moves = 2 * n_modules if smoke else 6 * n_modules
    schedule = GeometricSchedule(
        cooling_rate=0.85, freeze_ratio=(1e-2 if smoke else 1e-4)
    )
    steps = _schedule_steps(schedule)
    rounds = 2 if smoke else 3
    legs_per_round = len(ARMS)
    total_legs = rounds * legs_per_round

    # Full mode runs all drivers on the same worker count -- the
    # portfolio round width, capped at the machine's cores -- so no
    # driver gets a parallelism edge; results are bit-identical at any
    # worker count (see the results_agree gate).
    workers = 1 if smoke else min(len(ARMS), os.cpu_count() or 1)
    base = dict(
        netlist=netlist,
        seed=seed,
        objective_spec=spec,
        moves_per_temperature=moves,
        schedule=schedule,
        workers=workers,
    )

    multistart, ms_wall = _timed_run(
        make_driver(
            "multistart", DriverConfig(restarts=total_legs, **base)
        )
    )
    portfolio, pf_wall = _timed_run(
        make_driver(
            "portfolio",
            DriverConfig(
                restarts=legs_per_round,
                rounds=rounds,
                representations=ARMS,
                **base,
            ),
        )
    )
    # Replica exchange spends moves_per_sweep per replica per round;
    # solve the round count for the same total moves.
    replicas = len(ARMS)
    tempering_rounds = max(1, (total_legs * steps) // replicas)
    tempering, tp_wall = _timed_run(
        make_driver(
            "tempering",
            DriverConfig(
                restarts=replicas, rounds=tempering_rounds, **base
            ),
        )
    )

    ms_moves = sum(r.n_moves for r in multistart.results)
    pf_moves = sum(r.n_moves for r in portfolio.results)
    tp_moves = sum(r.n_moves for r in tempering.results)
    # Scheduled budgets are identical by construction (same legs, same
    # schedule, same moves-per-temperature); executed moves may differ
    # by a hair because some representations skip degenerate moves
    # (e.g. a B*-tree op with no effect), so gate with a 2% tolerance.
    scheduled = total_legs * steps * moves
    equal_budget = abs(ms_moves - pf_moves) <= 0.02 * scheduled

    improvement = (
        (multistart.best_cost - portfolio.best_cost) / multistart.best_cost
    )

    row = {
        "name": name,
        "modules": n_modules,
        "nets": n_nets,
        "congestion_grid_size": round(grid_size, 3),
        "legs": total_legs,
        "workers": workers,
        "schedule_steps": steps,
        "moves_per_temperature": moves,
        "scheduled_moves_per_driver": scheduled,
        "multistart_moves": ms_moves,
        "portfolio_moves": pf_moves,
        "tempering_moves": tp_moves,
        "equal_budget": equal_budget,
        "multistart_wall_seconds": round(ms_wall, 3),
        "portfolio_wall_seconds": round(pf_wall, 3),
        "tempering_wall_seconds": round(tp_wall, 3),
        "multistart_best_cost": multistart.best_cost,
        "portfolio_best_cost": portfolio.best_cost,
        "tempering_best_cost": tempering.best_cost,
        "portfolio_best_representation": portfolio.best.representation,
        "portfolio_improvement_pct": round(100.0 * improvement, 3),
        "portfolio_beats_multistart": (
            portfolio.best_cost <= multistart.best_cost
        ),
        "arm_bests": {
            arm: min(
                (r.cost for r in portfolio.results
                 if r.representation == arm),
                default=None,
            )
            for arm in ARMS
        },
        "swap_acceptance": (
            sum(1 for s in tempering.ledger["swaps"] if s["accepted"])
            / max(1, len(tempering.ledger["swaps"]))
        ),
    }
    print(
        f"{name}: multistart {multistart.best_cost:.4f} "
        f"({ms_wall:.1f}s) vs portfolio {portfolio.best_cost:.4f} "
        f"({pf_wall:.1f}s, won by {row['portfolio_best_representation']}) "
        f"vs tempering {tempering.best_cost:.4f} ({tp_wall:.1f}s); "
        f"improvement {row['portfolio_improvement_pct']:+.2f}%"
    )
    return row


def parity_and_strict_checks(smoke, seed=7):
    """Cheap correctness gates on a reduced workload."""
    netlist = random_circuit(12, 40, seed=seed)
    grid_size = max(math.sqrt(netlist.total_module_area) / 30.0, 1e-6)
    schedule = GeometricSchedule(cooling_rate=0.8, freeze_ratio=1e-2)
    base = dict(
        netlist=netlist,
        restarts=3,
        rounds=2,
        seed=seed,
        moves_per_temperature=20,
        schedule=schedule,
    )

    spec = ObjectiveSpec(gamma=1.0, congestion_grid_size=grid_size)
    sequential = make_driver(
        "portfolio", DriverConfig(objective_spec=spec, workers=1, **base)
    ).run()
    pooled = make_driver(
        "portfolio", DriverConfig(objective_spec=spec, workers=2, **base)
    ).run()
    results_agree = (
        sequential.best_cost == pooled.best_cost
        and sequential.costs == pooled.costs
        and sequential.ledger == pooled.ledger
    )

    strict_spec = ObjectiveSpec(
        gamma=1.0, congestion_grid_size=grid_size, strict_incremental=True
    )
    strict_ok = True
    try:
        make_driver(
            "portfolio", DriverConfig(objective_spec=strict_spec, **base)
        ).run()
    except AssertionError as exc:
        strict_ok = False
        print(f"  STRICT-MODE FAILURE: {exc}", file=sys.stderr)
    return results_agree, strict_ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced schedule; exit non-zero on gate violations (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_portfolio.json in the "
        "repository root; smoke mode defaults to not writing)",
    )
    args = parser.parse_args(argv)

    results_agree, strict_ok = parity_and_strict_checks(args.smoke)
    workloads = [("ami33-scale", 33, 120), ("ami49-scale", 49, 200)]
    rows = [
        bench_workload(name, m, n, smoke=args.smoke)
        for name, m, n in workloads
    ]

    payload = {
        "benchmark": "search drivers vs best-of-N multistart",
        "smoke": args.smoke,
        "workloads": rows,
        "equal_budget": all(r["equal_budget"] for r in rows),
        "results_agree": results_agree,
        "strict_ok": strict_ok,
        "portfolio_beats_multistart_at_scale": next(
            r["portfolio_beats_multistart"]
            for r in rows
            if r["name"] == "ami49-scale"
        ),
    }

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"
    if out is not None:
        atomic_write_json(out, payload)
        print(f"wrote {out}")

    failures = []
    if not payload["equal_budget"]:
        failures.append("multistart and portfolio move budgets differ")
    if not payload["results_agree"]:
        failures.append("portfolio is not pool/sequential deterministic")
    if not payload["strict_ok"]:
        failures.append("strict-mode delta/full agreement failed")
    if not payload["portfolio_beats_multistart_at_scale"]:
        failures.append(
            "portfolio lost to equal-budget multistart on ami49-scale"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
