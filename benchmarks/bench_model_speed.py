"""Model evaluation micro-benchmarks: IR-grid vs fixed grids.

The paper's Experiment 3 time claim rests on the IR model evaluating
far fewer cells per floorplan.  These micro-benchmarks time one full
congestion evaluation of each model on identical placed nets, plus the
cell-count comparison that is implementation-independent.
"""

import random

import pytest

from repro.congestion import FixedGridModel, IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.pins import assign_pins


def _instance(circuit_name, grid_size, seed=0):
    circuit = load_mcnc(circuit_name)
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(seed)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, grid_size)
    return floorplan, assignment.two_pin_nets


@pytest.fixture(scope="module")
def ami33_instance():
    return _instance("ami33", 30.0)


def test_irgrid_eval_ami33(benchmark, ami33_instance):
    floorplan, nets = ami33_instance
    model = IrregularGridModel(30.0)
    benchmark(model.estimate, floorplan.chip, nets)


def test_irgrid_exact_eval_ami33(benchmark, ami33_instance):
    floorplan, nets = ami33_instance
    model = IrregularGridModel(30.0, method="exact")
    benchmark(model.estimate, floorplan.chip, nets)


@pytest.mark.parametrize("pitch", [100.0, 50.0, 10.0])
def test_fixed_eval_ami33(benchmark, ami33_instance, pitch):
    floorplan, nets = ami33_instance
    model = FixedGridModel(pitch)
    benchmark(model.estimate_fast, floorplan.chip, nets)


def test_cell_count_comparison(benchmark, record_artifact):
    """The implementation-independent efficiency claim: the IR model
    partitions the chip into far fewer evaluation cells than the fine
    fixed grids of comparable fidelity."""
    rows = []
    for circuit_name in ("apte", "hp", "ami33"):
        grid_size = 60.0 if circuit_name == "apte" else 30.0
        floorplan, nets = _instance(circuit_name, grid_size)
        model = IrregularGridModel(grid_size)
        _, irgrid = model.evaluate_with_grid(floorplan.chip, nets)
        fixed50 = FixedGridModel(50.0)
        cols, rows50 = fixed50.grid_shape(floorplan.chip)
        fixed_gs = FixedGridModel(grid_size)
        cols_g, rows_g = fixed_gs.grid_shape(floorplan.chip)
        rows.append(
            [
                circuit_name,
                irgrid.n_cells,
                cols * rows50,
                cols_g * rows_g,
                f"{(cols_g * rows_g) / irgrid.n_cells:.1f}x",
            ]
        )
    text = format_table(
        [
            "circuit",
            "# IR-grids",
            "# fixed 50um",
            "# fixed (same pitch)",
            "fixed/IR ratio",
        ],
        rows,
        title="Evaluation-cell counts: Irregular-Grid vs fixed grids",
    )
    record_artifact("model_cell_counts", text)
    for row in rows:
        assert row[1] < row[3]  # IR always partitions coarser than its pitch

    # Timed quantity: one IR-grid construction on ami33.
    floorplan, nets = _instance("ami33", 30.0)
    from repro.congestion import build_irgrid

    benchmark(build_irgrid, floorplan.chip, nets, 30.0)
