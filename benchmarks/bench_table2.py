"""Table 2: the floorplanner with the Irregular-Grid congestion term.

Regenerates the paper's Table 2 rows (area, wirelength, IR-grid
congestion cost, run time, judged congestion; averages and best) and
times one congestion-aware annealing run -- the per-run cost whose
ratio against Table 1's runs shows the price of the congestion term.
"""

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.config import circuit_config
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table


def test_table2(benchmark, experiment1_rows, profile, record_artifact):
    rows = []
    for name, row in experiment1_rows.items():
        c = row.congestion_aware
        grid = circuit_config(name).ir_grid_size
        rows.append(
            [
                name,
                f"{grid:g}x{grid:g}",
                c.avg_area_mm2,
                c.avg_wirelength_um,
                c.avg_congestion_cost,
                c.avg_runtime_seconds,
                c.avg_judging_cost,
                c.best.area_mm2,
                c.best.wirelength_um,
                c.best.judging_cost,
            ]
        )
    text = format_table(
        [
            "circuit",
            "grid um",
            "avg area mm2",
            "avg WL um",
            "avg IR cgt",
            "avg time s",
            "avg judging cgt",
            "best area mm2",
            "best WL um",
            "best judging cgt",
        ],
        rows,
        title=f"Table 2 (profile {profile.name}, {profile.n_seeds} seeds): "
        "+ Irregular-Grid congestion term",
    )
    record_artifact("table2", text)

    netlist = load_mcnc("hp")
    cfg = circuit_config("hp")

    def one_aware_run():
        objective = FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(cfg.ir_grid_size),
        )
        return run_once(
            netlist,
            objective,
            seed=0,
            profile=profile,
            judging_grid_size=cfg.judging_grid_size,
        )

    record = benchmark.pedantic(one_aware_run, rounds=1, iterations=1)
    assert record.congestion_cost > 0
