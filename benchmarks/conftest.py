"""Shared fixtures for the reproduction benchmarks.

Every bench prints the table/figure it regenerates (run with ``-s`` to
see it live) and appends it to ``benchmarks/results/<name>.txt`` so the
artifacts survive for EXPERIMENTS.md.

Effort is governed by the experiment profiles (REPRO_PROFILE /
REPRO_SEEDS, see :mod:`repro.experiments.config`); the default is the
``smoke`` profile with the heavy ami49 circuit excluded -- set
``REPRO_CIRCUITS=apte,xerox,hp,ami33,ami49`` and ``REPRO_PROFILE=paper``
for the full reproduction.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.config import active_profile
from repro.experiments.exp1 import run_experiment1

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_CIRCUITS = ("apte", "xerox", "hp", "ami33")


def bench_circuits():
    """Circuits exercised by the table benches."""
    env = os.environ.get("REPRO_CIRCUITS")
    if env:
        return tuple(name.strip() for name in env.split(",") if name.strip())
    return DEFAULT_CIRCUITS


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def record_artifact():
    """Callable writing a rendered table to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def experiment1_rows(profile):
    """Tables 1-3 share one (expensive) Experiment-1 sweep."""
    return run_experiment1(bench_circuits(), profile)
