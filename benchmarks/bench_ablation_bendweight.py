"""Ablation A6: how much does the uniform-route assumption matter?

The paper inherits the "all monotone routes equally likely" assumption.
Real routers prefer few-bend routes; the bend-weighted model
(``lambda ** bends``) interpolates between the paper's model
(lambda = 1) and pure L-shape routing (lambda -> 0).  This ablation
sweeps lambda and checks, against an L/Z-pattern router's actual track
usage, which route distribution predicts reality best -- quantifying
the modeling risk the paper silently accepts.
"""

import random

from repro.congestion import BendWeightedModel, FixedGridModel
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.pins import assign_pins
from repro.routing import GlobalRouter, RoutingGrid
from repro.routing.overflow import rank_correlation

CELL = 50.0
LAMBDAS = (1.0, 0.7, 0.4, 0.1)


def _instance(seed=0):
    circuit = load_mcnc("ami33")
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(seed)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, 30.0)
    return floorplan, assignment.two_pin_nets


def test_bend_weight_sweep(benchmark, record_artifact):
    rows = []
    corr_by_lambda = {lam: [] for lam in LAMBDAS}
    for seed in range(3):
        floorplan, nets = _instance(seed)
        # Route with the L/Z pattern router: it prefers low-bend paths,
        # the behaviour the bend weighting models.
        grid = RoutingGrid(floorplan.chip, cell_size=CELL, capacity=24)
        GlobalRouter(grid, strategy="lz").route(nets)
        util = grid.cell_utilization()
        for lam in LAMBDAS:
            model = BendWeightedModel(CELL, bend_weight=lam)
            est = model.evaluate_array(floorplan.chip, nets)
            n_c = min(util.shape[0], est.shape[0])
            n_r = min(util.shape[1], est.shape[1])
            corr = rank_correlation(
                util[:n_c, :n_r].ravel(), est[:n_c, :n_r].ravel()
            )
            corr_by_lambda[lam].append(corr)
    for lam in LAMBDAS:
        values = corr_by_lambda[lam]
        rows.append(
            [
                lam,
                f"{sum(values) / len(values):.3f}",
                f"{min(values):.3f}",
            ]
        )
    text = format_table(
        ["lambda (bend weight)", "mean rank corr vs L/Z router", "min"],
        rows,
        title="A6: route-distribution assumption vs routed reality (ami33)",
    )
    record_artifact("ablation_bendweight", text)

    # Every weighting must stay informative.
    for row in rows:
        assert float(row[1]) > 0.4

    # Timed quantity: one bend-weighted evaluation (DP per net) vs the
    # closed-form uniform model's cost is visible in bench output.
    floorplan, nets = _instance(0)
    model = BendWeightedModel(CELL, bend_weight=0.5)
    benchmark(model.evaluate_array, floorplan.chip, nets)


def test_uniform_model_cost_reference(benchmark):
    """Baseline for the A6 timing: Formula 2's closed form."""
    floorplan, nets = _instance(0)
    model = FixedGridModel(CELL)
    benchmark(model.evaluate_array, floorplan.chip, nets)
