"""Figure 9: does the IR cost track the fine judging model?

Regenerates the paper's three curves on ami33 -- the IR model's own
cost (A), the 10 um judging cost (B) and the 50 um judging cost (C) at
every temperature step of a congestion-only anneal -- and reports the
rank correlations that quantify the paper's "slopes of A and B are more
similar than the slopes of A and C" conclusion.

The timed quantity is the full Experiment-2 pipeline (anneal + judging
every snapshot at two pitches).
"""

from repro.experiments.exp2 import format_experiment2, run_experiment2

CIRCUIT = "ami33"


def test_figure9(benchmark, profile, record_artifact):
    result = benchmark.pedantic(
        lambda: run_experiment2(CIRCUIT, profile=profile, seed=0),
        rounds=1,
        iterations=1,
    )
    text = format_experiment2(result)
    record_artifact("figure9", text)

    # Shape assertions: all three series move together at all.
    assert result.n_snapshots >= 3
    assert result.corr_model_vs_fine > 0.0
    print(
        f"\ncorr(A,B)={result.corr_model_vs_fine:.3f}  "
        f"corr(A,C)={result.corr_model_vs_coarse:.3f}  "
        f"IR-tracks-fine-better={result.model_tracks_better}"
    )
