"""Ablations A4/A5: congestion weight sweep and net decomposition.

* **A4 (gamma sweep).** The paper fixes one cost mix per experiment;
  this ablation sweeps the congestion weight gamma and charts the
  area/wirelength price of each increment of judged-congestion relief
  -- the trade Table 3 samples at a single point.
* **A5 (decomposition).** The paper decomposes multi-pin nets by MST;
  the star alternative concentrates routing demand at hub pins.  This
  ablation measures how much the decomposition choice shifts the
  congestion estimates themselves.
"""

import random

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel, JudgingModel
from repro.data import load_mcnc
from repro.experiments.config import ExperimentProfile
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.netlist import decompose_to_two_pin, star_decomposition
from repro.pins import assign_pins

CIRCUIT = "hp"
GAMMAS = (0.0, 0.5, 1.0, 2.0, 4.0)

SWEEP_PROFILE = ExperimentProfile(
    name="sweep",
    n_seeds=1,
    moves_factor=3,
    cooling_rate=0.8,
    freeze_ratio=5e-3,
    max_steps=24,
)


def test_gamma_sweep(benchmark, record_artifact):
    netlist = load_mcnc(CIRCUIT)
    rows = []
    for gamma in GAMMAS:
        if gamma > 0:
            objective = FloorplanObjective(
                netlist,
                alpha=1.0,
                beta=1.0,
                gamma=gamma,
                congestion_model=IrregularGridModel(30.0),
            )
        else:
            objective = FloorplanObjective(
                netlist, alpha=1.0, beta=1.0, pin_grid_size=30.0
            )
        record = run_once(
            netlist, objective, seed=0, profile=SWEEP_PROFILE,
            judging_grid_size=10.0,
        )
        rows.append(
            [
                gamma,
                record.area_mm2,
                record.wirelength_um,
                record.judging_cost,
            ]
        )
    text = format_table(
        ["gamma", "area mm2", "wirelength um", "judged congestion"],
        rows,
        title=f"A4: congestion-weight sweep ({CIRCUIT}, seed 0)",
    )
    record_artifact("ablation_gamma", text)

    # The timed step: one mid-gamma annealing run.
    objective = FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=1.0,
        congestion_model=IrregularGridModel(30.0),
    )
    benchmark.pedantic(
        lambda: run_once(
            netlist, objective, seed=1, profile=SWEEP_PROFILE,
            judging_grid_size=10.0,
        ),
        rounds=1,
        iterations=1,
    )


def test_decomposition_ablation(benchmark, record_artifact):
    netlist = load_mcnc("ami33")
    modules = {m.name: m for m in netlist.modules}
    rng = random.Random(0)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, netlist, 30.0)

    # Rebuild 2-pin nets under both decompositions from the same pins.
    mst_nets = []
    star_nets = []
    for net in netlist.nets:
        locations = assignment.pin_locations[net.name]
        mst_nets.extend(decompose_to_two_pin(net, locations))
        star_nets.extend(star_decomposition(net, locations))

    model = IrregularGridModel(30.0)
    mst_score = model.estimate(floorplan.chip, mst_nets)
    star_score = model.estimate(floorplan.chip, star_nets)
    mst_wl = sum(n.manhattan_length for n in mst_nets)
    star_wl = sum(n.manhattan_length for n in star_nets)
    text = format_table(
        ["decomposition", "# 2-pin nets", "total length um", "IR congestion"],
        [
            ["mst (paper)", len(mst_nets), mst_wl, mst_score],
            ["star", len(star_nets), star_wl, star_score],
        ],
        title="A5: multi-pin decomposition effect (ami33, one floorplan)",
    )
    record_artifact("ablation_decomposition", text)
    assert star_wl >= mst_wl - 1e-6  # MST is the shorter decomposition

    benchmark(model.estimate, floorplan.chip, mst_nets)
