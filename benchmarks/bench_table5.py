"""Table 5: congestion-only floorplanning with the fixed-grid model.

Regenerates the paper's Table 5 (ami33, fixed grids at 100x100 and
50x50 um^2) and prints the head-to-head ratios against Table 4's IR
configuration -- the paper's claim: the IR model is 2.3-3.5x faster
with 4.6-8.8 % lower judged congestion.

The timed quantity is one fixed-grid (50 um) congestion-only run, the
direct counterpart of bench_table4's timed run.
"""

from repro.anneal import FloorplanObjective
from repro.congestion import FixedGridModel, IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.config import circuit_config
from repro.experiments.exp3 import format_experiment3, run_experiment3
from repro.experiments.runner import run_once

CIRCUIT = "ami33"


def test_table5(benchmark, profile, record_artifact):
    rows = run_experiment3(CIRCUIT, profile=profile)
    text = format_experiment3(rows, CIRCUIT)
    record_artifact("table5", text)

    netlist = load_mcnc(CIRCUIT)
    cfg = circuit_config(CIRCUIT)

    def one_fixed_run():
        objective = FloorplanObjective(
            netlist,
            alpha=0.0,
            beta=0.0,
            gamma=1.0,
            congestion_model=FixedGridModel(50.0),
        )
        return run_once(
            netlist,
            objective,
            seed=0,
            profile=profile,
            judging_grid_size=cfg.judging_grid_size,
        )

    record = benchmark.pedantic(one_fixed_run, rounds=1, iterations=1)
    assert record.judging_cost > 0
