"""Ablation A7: pin-assignment style.

The paper's "intersection-to-intersection" pin placement is described
in one sentence; how pins are distributed over a module materially
changes every congestion map.  This ablation compares the three
implemented readings -- ``center`` (all of a module's pins at one
point), ``perimeter`` (evenly spaced boundary pins, our default) and
``facing`` (pins aimed at their nets) -- on wirelength, judged
congestion, and how well the IR estimate ranks floorplans under each.
"""

import random

from repro.congestion import FixedGridModel, IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.metrics import total_two_pin_length
from repro.pins import assign_pins
from repro.routing.overflow import rank_correlation

STYLES = ("center", "perimeter", "facing")
N_FLOORPLANS = 6


def _floorplans():
    circuit = load_mcnc("ami33")
    modules = {m.name: m for m in circuit.modules}
    out = []
    for seed in range(N_FLOORPLANS):
        rng = random.Random(seed)
        expr = initial_expression(list(modules), rng)
        for _ in range(8 * len(modules)):
            expr = expr.random_neighbor(rng)
        out.append(evaluate_polish(expr, modules))
    return circuit, out


def test_pin_style_ablation(benchmark, record_artifact):
    circuit, floorplans = _floorplans()
    judge = FixedGridModel(10.0)
    rows = []
    for style in STYLES:
        wl_sum = 0.0
        judged = []
        estimated = []
        for floorplan in floorplans:
            pa = assign_pins(floorplan, circuit, 30.0, pin_style=style)
            wl_sum += total_two_pin_length(pa.two_pin_nets)
            judge_pa = assign_pins(floorplan, circuit, 10.0, pin_style=style)
            judged.append(
                judge.estimate_fast(floorplan.chip, judge_pa.two_pin_nets)
            )
            estimated.append(
                IrregularGridModel(30.0).estimate(
                    floorplan.chip, pa.two_pin_nets
                )
            )
        corr = rank_correlation(estimated, judged)
        rows.append(
            [
                style,
                wl_sum / len(floorplans),
                f"{sum(judged) / len(judged):.4f}",
                f"{corr:.3f}",
            ]
        )
    text = format_table(
        [
            "pin style",
            "avg total 2-pin WL um",
            "avg judged cgt",
            "IR-vs-judge rank corr",
        ],
        rows,
        title="A7: pin-assignment style (ami33, 6 random floorplans)",
    )
    record_artifact("ablation_pins", text)

    # The facing style aims pins at their nets: shortest wirelength.
    wl = {row[0]: row[1] for row in rows}
    assert wl["facing"] <= wl["perimeter"] + 1e-6
    # The IR estimate must stay an informative ranking under any style.
    for row in rows:
        assert float(row[3]) > 0.0

    floorplan = floorplans[0]
    benchmark(
        assign_pins, floorplan, circuit, 30.0, "facing"
    )
