"""Ablation A3: probabilistic estimates vs actual routed congestion.

The paper's ground truth is a fine fixed-grid *estimate*; here we route
the nets for real on a capacitated grid and measure how well each
model's congestion picture predicts the router's measured utilization
-- per-cell rank correlation for the fixed model, and score-level rank
correlation across floorplans for both models.
"""

import random

from repro.congestion import FixedGridModel, IrregularGridModel, RudyModel
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.pins import assign_pins
from repro.routing import GlobalRouter, RoutingGrid, overflow_report
from repro.routing.overflow import rank_correlation

CIRCUIT = "ami33"
CELL = 50.0
N_FLOORPLANS = 6


def _floorplans():
    circuit = load_mcnc(CIRCUIT)
    modules = {m.name: m for m in circuit.modules}
    out = []
    for seed in range(N_FLOORPLANS):
        rng = random.Random(seed)
        expr = initial_expression(list(modules), rng)
        for _ in range((5 + 10 * seed) * len(modules) // 5):
            expr = expr.random_neighbor(rng)
        floorplan = evaluate_polish(expr, modules)
        assignment = assign_pins(floorplan, circuit, 30.0)
        out.append((floorplan, assignment.two_pin_nets))
    return out


def _route(floorplan, nets):
    grid = RoutingGrid(floorplan.chip, cell_size=CELL, capacity=24)
    GlobalRouter(grid, strategy="monotone").route(nets)
    return grid


def test_estimates_predict_routed_congestion(benchmark, record_artifact):
    instances = _floorplans()

    per_cell_rows = []
    routed_scores = []
    ir_scores = []
    fixed_scores = []
    for k, (floorplan, nets) in enumerate(instances):
        grid = _route(floorplan, nets)
        util = grid.cell_utilization()
        report = overflow_report(grid)
        fixed = FixedGridModel(CELL)
        estimate = fixed.evaluate_array(floorplan.chip, nets)
        n_c = min(util.shape[0], estimate.shape[0])
        n_r = min(util.shape[1], estimate.shape[1])
        cell_corr = rank_correlation(
            util[:n_c, :n_r].ravel(), estimate[:n_c, :n_r].ravel()
        )
        per_cell_rows.append(
            [k, f"{cell_corr:.3f}", f"{report.top10_cell_utilization:.3f}"]
        )
        routed_scores.append(report.top10_cell_utilization)
        ir_scores.append(
            IrregularGridModel(30.0).estimate(floorplan.chip, nets)
        )
        fixed_scores.append(fixed.score_array(estimate))

    ir_corr = rank_correlation(ir_scores, routed_scores)
    fixed_corr = rank_correlation(fixed_scores, routed_scores)
    text = (
        format_table(
            ["floorplan", "per-cell rank corr", "routed top-10% util"],
            per_cell_rows,
            title="A3: fixed-grid estimate vs routed utilization, per cell",
        )
        + "\n"
        + f"score-level rank corr across floorplans: IR-grid {ir_corr:.3f}, "
        f"fixed-grid {fixed_corr:.3f}"
    )
    record_artifact("router_validation", text)

    # The estimates must be informative predictors of routed reality.
    mean_cell_corr = sum(float(r[1]) for r in per_cell_rows) / len(per_cell_rows)
    assert mean_cell_corr > 0.4

    floorplan, nets = instances[0]
    benchmark(lambda: _route(floorplan, nets))


def test_probabilistic_vs_rudy_prediction(benchmark, record_artifact):
    """What does the route-distribution model buy over RUDY's uniform
    smear?  Per-cell rank correlation against routed utilization for
    all three estimators on the same floorplans."""
    instances = _floorplans()
    rows = []
    sums = {"fixed": 0.0, "rudy": 0.0}
    for k, (floorplan, nets) in enumerate(instances):
        grid = _route(floorplan, nets)
        util = grid.cell_utilization()
        estimates = {
            "fixed": FixedGridModel(CELL).evaluate_array(floorplan.chip, nets),
            "rudy": RudyModel(CELL).evaluate_array(floorplan.chip, nets),
        }
        row = [k]
        for name in ("fixed", "rudy"):
            est = estimates[name]
            n_c = min(util.shape[0], est.shape[0])
            n_r = min(util.shape[1], est.shape[1])
            corr = rank_correlation(
                util[:n_c, :n_r].ravel(), est[:n_c, :n_r].ravel()
            )
            sums[name] += corr
            row.append(f"{corr:.3f}")
        rows.append(row)
    text = format_table(
        ["floorplan", "probabilistic (Formula 2)", "RUDY"],
        rows,
        title="Per-cell rank correlation with routed utilization",
    )
    record_artifact("router_validation_models", text)
    n = len(instances)
    # Both must be informative; the probabilistic model should match or
    # beat the uniform smear on average.
    assert sums["fixed"] / n > 0.4
    assert sums["rudy"] / n > 0.3

    # Timed quantity: one RUDY evaluation (the cheap baseline).
    floorplan, nets = instances[0]
    model = RudyModel(CELL)
    benchmark(model.evaluate_array, floorplan.chip, nets)
