"""Table 3: improvements of the congestion-aware floorplanner.

Derives the paper's Table 3 from the shared Experiment-1 sweep: the
percentage change in area, wirelength and judged congestion between the
two floorplanners.  The paper's shape to reproduce: judged congestion
drops (positive improvement, 2-20 %) at a small area/wirelength cost.

The timed quantity is the derivation itself (cheap); the expensive work
is in the session-shared Experiment-1 fixture.
"""

from repro.experiments.tables import format_table


def test_table3(benchmark, experiment1_rows, profile, record_artifact):
    def derive():
        rows = []
        for name, row in experiment1_rows.items():
            rows.append(
                [
                    name,
                    row.avg_area_improvement_pct,
                    row.avg_wirelength_improvement_pct,
                    row.avg_judging_improvement_pct,
                    row.best_area_improvement_pct,
                    row.best_wirelength_improvement_pct,
                    row.best_judging_improvement_pct,
                ]
            )
        return rows

    rows = benchmark(derive)
    text = format_table(
        [
            "circuit",
            "avg area %",
            "avg WL %",
            "avg judging cgt %",
            "best area %",
            "best WL %",
            "best judging cgt %",
        ],
        rows,
        title=f"Table 3 (profile {profile.name}): improvement of the "
        "congestion-aware floorplanner (positive = better)",
    )
    record_artifact("table3", text)

    # The reproduction's headline shape: judged congestion improves on
    # average across the suite (individual circuits may fluctuate at
    # smoke effort).
    mean_gain = sum(r[3] for r in rows) / len(rows)
    print(f"\nmean avg-judging improvement across circuits: {mean_gain:+.2f}%")
