#!/usr/bin/env python
"""Congestion-evaluation scaling benchmark: 300/1000-module sweeps.

PR 9's question: after the committed-grid ledger makes congestion
re-estimation O(dirty), where do the remaining O(n) terms dominate as
synthetic workloads grow past the MCNC sizes?  For each workload the
script runs the same seeded annealing schedule twice through the
incremental pipeline:

* ``ledger on``: the default ``IrregularGridModel`` -- committed-grid
  ledger + vectorized memo lane;
* ``ledger off``: ``use_ledger=False`` -- every evaluation rebuilds the
  mass from scratch through the (also vectorized) full batch path.

Both runs use the sequence-pair representation: slicing-tree packing
recurses per module and overflows CPython's default recursion limit
near 1000 modules, while sequence-pair packing is iterative.  The
schedules are move-count-identical, so moves/sec is comparable even if
the walks diverge by float dust; correctness is gated by a short
strict-mode replay (``strict_incremental=True`` re-runs the full
object pipeline after every delta evaluation and asserts agreement to
1e-12) plus counter gates (the ledger delta path must actually fire),
never by wall-clock.

Results go to ``BENCH_congestion.json`` (see ``--out``)::

    {"workloads": [{"name": "n300", "modules": 300,
                    "ledger_moves_per_sec": ..., "full_moves_per_sec": ...,
                    "ledger_speedup": ..., "phases": {"packing": {...},
                    "mass_eval": {...}, ...}, "ledger_counters": {...},
                    "dominant_phase": "packing", ...}, ...],
     "strict_ok": true, "ledger_fired": true}

``--smoke`` runs the 300-module workload on a reduced schedule and
exits non-zero when the strict replay or a counter gate fails --
cheap enough for CI and timing-robust.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.anneal import FloorplanObjective  # noqa: E402
from repro.anneal.schedule import GeometricSchedule  # noqa: E402
from repro.congestion import IrregularGridModel  # noqa: E402
from repro.engine import AnnealEngine  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402

# Phase timers worth attributing, outermost first.  ``congestion``
# encloses ``irgrid_build``/``mass_eval``/``scoring``, so the inner
# three are a breakdown of it, not additive with it.
PHASES = (
    "packing",
    "pin_assignment",
    "wirelength",
    "congestion",
    "irgrid_build",
    "mass_eval",
    "scoring",
)


def _objective(netlist, grid_size: float, use_ledger: bool,
               strict: bool = False) -> FloorplanObjective:
    return FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=1.0,
        congestion_model=IrregularGridModel(
            grid_size, use_cache=True, use_ledger=use_ledger
        ),
        incremental=True,
        strict_incremental=strict,
    )


def _run(netlist, grid_size, use_ledger, moves_per_temperature, schedule,
         seed, strict=False):
    engine = AnnealEngine(
        netlist,
        objective=_objective(netlist, grid_size, use_ledger, strict),
        representation="sp",
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
        calibrate=False,
    )
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    return result, wall


def bench_workload(name, n_modules, n_nets, smoke, seed=7):
    netlist = random_circuit(n_modules, n_nets, seed=seed)
    grid_size = max(math.sqrt(netlist.total_module_area) / 30.0, 1e-6)
    moves = 30 if smoke else 40
    schedule = GeometricSchedule(
        cooling_rate=(0.5 if smoke else 0.7),
        freeze_ratio=(0.5 if smoke else 0.1),
    )

    on_result, on_wall = _run(
        netlist, grid_size, use_ledger=True,
        moves_per_temperature=moves, schedule=schedule, seed=seed,
    )
    off_result, off_wall = _run(
        netlist, grid_size, use_ledger=False,
        moves_per_temperature=moves, schedule=schedule, seed=seed,
    )

    # Short strict replay: every delta evaluation re-checked against the
    # full object pipeline (AssertionError on >1e-12 divergence).
    strict_ok = True
    try:
        _run(
            netlist, grid_size, use_ledger=True,
            moves_per_temperature=min(moves, 20),
            schedule=GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.5),
            seed=seed, strict=True,
        )
    except AssertionError as exc:
        strict_ok = False
        print(f"  STRICT-MODE FAILURE: {exc}", file=sys.stderr)

    counters = on_result.perf.counters
    ledger_counters = {
        key: counters.get(key, 0)
        for key in (
            "ledger_hits",
            "congestion_delta",
            "congestion_grid_rebuilt",
            "congestion_skipped",
            "nets_redone",
            "evaluations",
        )
    }
    timers = on_result.perf.timers
    phases = {
        pname: {
            "seconds": round(stat.seconds, 4),
            "calls": stat.calls,
            "ms_per_call": round(stat.ms_per_call, 3),
        }
        for pname in PHASES
        if (stat := timers.get(pname)) is not None
    }
    # Outer (non-overlapping) phases only; 'congestion' already
    # contains irgrid_build/mass_eval/scoring.
    outer = [p for p in ("packing", "pin_assignment", "wirelength",
                         "congestion") if p in phases]
    dominant = max(outer, key=lambda p: phases[p]["seconds"]) if outer else ""

    row = {
        "name": name,
        "modules": n_modules,
        "nets": n_nets,
        "moves": on_result.n_moves,
        "ledger_wall_seconds": round(on_wall, 3),
        "full_wall_seconds": round(off_wall, 3),
        "ledger_moves_per_sec": round(on_result.n_moves / on_wall, 2),
        "full_moves_per_sec": round(off_result.n_moves / off_wall, 2),
        "ledger_speedup": round(off_wall / on_wall, 3),
        "ledger_best_cost": on_result.cost,
        "full_best_cost": off_result.cost,
        "costs_close": math.isclose(
            on_result.cost, off_result.cost, rel_tol=1e-6, abs_tol=1e-6
        ),
        "strict_ok": strict_ok,
        "ledger_counters": ledger_counters,
        "phases": phases,
        "dominant_phase": dominant,
        "congestion_share": round(
            phases.get("congestion", {}).get("seconds", 0.0) / on_wall, 4
        ),
    }
    print(
        f"{name}: ledger {row['ledger_moves_per_sec']:.1f} moves/s, "
        f"full {row['full_moves_per_sec']:.1f} moves/s "
        f"(x{row['ledger_speedup']:.2f}), delta evals "
        f"{ledger_counters['congestion_delta']}/"
        f"{ledger_counters['congestion_delta'] + ledger_counters['congestion_grid_rebuilt']}, "
        f"dominant phase {dominant} "
        f"({100.0 * row['congestion_share']:.1f}% congestion), "
        f"strict={strict_ok}"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="300-module workload only, reduced schedule; exit non-zero "
        "when the strict replay or a counter gate fails (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_congestion.json in the "
        "repository root; smoke mode defaults to not writing)",
    )
    args = parser.parse_args(argv)

    workloads = [("n300", 300, 1200)]
    if not args.smoke:
        workloads.append(("n1000", 1000, 4000))
    rows = [
        bench_workload(name, m, n, smoke=args.smoke)
        for name, m, n in workloads
    ]

    payload = {
        "benchmark": "congestion evaluation scaling",
        "smoke": args.smoke,
        "workloads": rows,
        "strict_ok": all(r["strict_ok"] for r in rows),
        "ledger_fired": all(
            r["ledger_counters"]["congestion_delta"] > 0 for r in rows
        ),
        "min_ledger_speedup": min(r["ledger_speedup"] for r in rows),
    }

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_congestion.json"
    if out is not None:
        atomic_write_json(out, payload)
        print(f"wrote {out}")

    # Counter gates only -- never wall-clock, so CI stays timing-robust.
    failures = []
    if not payload["strict_ok"]:
        failures.append("strict-mode ledger/full agreement failed")
    if not payload["ledger_fired"]:
        failures.append(
            "ledger delta path never fired (congestion_delta == 0)"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
