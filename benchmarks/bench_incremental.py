#!/usr/bin/env python
"""Benchmark the incremental annealing evaluator against the seed path.

For each workload (ami33/ami49-scale synthetic circuits) the script runs
the same seeded annealing schedule twice:

* ``seed``: ``incremental=False`` objective over an uncached congestion
  model -- the always-from-scratch evaluator the repository shipped
  with;
* ``fast``: the dirty-net delta path, the per-net congestion /
  placed-geometry memos, and the committed-grid congestion ledger
  (the defaults).

A third leg, ``noledger`` (``use_ledger=False``), carries the
identical-walk gate: its evaluator is bit-identical to the seed path
-- every cost term, including wirelength, now totals through the same
numpy pairwise reduction (see ``total_two_pin_length``) -- so the two
walks must traverse the same move sequence and land on the same best
cost (1e-9).  The ledger leg is *not* held to walk identity against
the seed: delta accumulation reorders float additions (~1e-14
relative), and over tens of thousands of moves that dust can
legitimately flip one Metropolis decision.  Its correctness gate is
the strict-mode replay (``strict_incremental=True``), which re-runs
the full pipeline after every delta evaluation and asserts agreement
to 1e-12.

A third replay of the fast run turns full observability on (JSONL
tracing, the metrics registry, progress snapshots with top-3
congestion densities every temperature step) and gates two properties:
the walk stays **bit-identical** (always), and the throughput cost
stays under the **5% overhead budget** (full mode only -- smoke
schedules are too short to time).

Results go to ``BENCH_incremental.json`` (see ``--out``)::

    {"workloads": [{"name": ..., "seed_moves_per_sec": ...,
                    "fast_moves_per_sec": ..., "speedup": ...,
                    "cache_hit_rates": {...}, ...}, ...],
     "min_speedup": ..., "strict_ok": true}

``--smoke`` runs a reduced schedule and exits non-zero when the cache
accounting is inconsistent or the two evaluators disagree -- cheap
enough for CI.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.anneal import FloorplanObjective  # noqa: E402
from repro.anneal.schedule import GeometricSchedule  # noqa: E402
from repro.backend import make_backend  # noqa: E402
from repro.congestion import IrregularGridModel  # noqa: E402
from repro.engine import AnnealEngine  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402


def _objective(netlist, grid_size: float, fast: bool, strict: bool = False,
               backend=None, use_ledger: bool = True):
    return FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=1.0,
        congestion_model=IrregularGridModel(
            grid_size, use_cache=fast, use_ledger=use_ledger
        ),
        incremental=fast,
        strict_incremental=strict,
        backend=backend,
    )


def _run(netlist, grid_size, fast, moves_per_temperature, schedule, seed,
         strict=False, backend=None, observer=None, use_ledger=True):
    # Each run builds a fresh objective, whose engine-scoped CacheContext
    # starts empty -- no global cache state survives between runs.
    engine = AnnealEngine(
        netlist,
        objective=_objective(
            netlist, grid_size, fast, strict, backend, use_ledger
        ),
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
    )
    t0 = time.perf_counter()
    result = engine.run(observer=observer)
    wall = time.perf_counter() - t0
    return result, wall


def bench_workload(name, n_modules, n_nets, smoke, seed=7, backend=None):
    netlist = random_circuit(n_modules, n_nets, seed=seed)
    grid_size = max(math.sqrt(netlist.total_module_area) / 30.0, 1e-6)
    moves = 3 * n_modules if smoke else 10 * n_modules
    schedule = GeometricSchedule(
        cooling_rate=0.85, freeze_ratio=(1e-2 if smoke else 1e-4)
    )

    # Resolve the fast-side backend once (JIT warm-up and, when numba
    # is requested but missing, the fallback warning happen here); the
    # seed side always runs the reference numpy path.
    resolved = make_backend(backend)

    seed_result, seed_wall = _run(
        netlist, grid_size, fast=False,
        moves_per_temperature=moves, schedule=schedule, seed=seed,
    )
    fast_result, fast_wall = _run(
        netlist, grid_size, fast=True,
        moves_per_temperature=moves, schedule=schedule, seed=seed,
        backend=resolved,
    )
    noledger_result, noledger_wall = _run(
        netlist, grid_size, fast=True,
        moves_per_temperature=moves, schedule=schedule, seed=seed,
        backend=resolved, use_ledger=False,
    )
    stats = fast_result.cache_stats

    # Same seed + numerically identical evaluators => identical walks.
    # The ledger-off leg carries this gate; the ledger leg's delta
    # accumulation reorders float additions, so its walk may
    # legitimately diverge by one flipped Metropolis decision (its
    # correctness gate is the strict replay below).
    evals_seed = seed_result.perf.counters.get("evaluations", 0)
    evals_fast = noledger_result.perf.counters.get("evaluations", 0)
    agree = (
        evals_seed == evals_fast
        and seed_result.n_moves == noledger_result.n_moves
        and math.isclose(
            seed_result.cost, noledger_result.cost,
            rel_tol=1e-9, abs_tol=1e-9,
        )
    )

    # Short strict-mode replay: every delta evaluation re-checked
    # against the full pipeline (raises AssertionError on divergence).
    strict_schedule = GeometricSchedule(cooling_rate=0.5, freeze_ratio=0.1)
    strict_ok = True
    try:
        _run(
            netlist, grid_size, fast=True,
            moves_per_temperature=min(moves, n_modules),
            schedule=strict_schedule, seed=seed, strict=True,
        )
    except AssertionError as exc:
        strict_ok = False
        print(f"  STRICT-MODE FAILURE: {exc}", file=sys.stderr)

    # Observability-on replay of the fast run: full tracing + metrics +
    # progress sampling at the densest cadence (every temperature step,
    # top-3 congestion densities).  The walk must be bit-identical --
    # observer hooks sit strictly between moves and touch no RNG -- and
    # the throughput cost is the trace's overhead budget.
    import tempfile

    from repro.obs import RunObserver, Tracer

    with tempfile.TemporaryDirectory() as tmp:
        observer = RunObserver(
            tracer=Tracer(Path(tmp) / "bench.jsonl"),
            progress_every=1,
            progress_top_k=3,
        )
        obs_result, obs_wall = _run(
            netlist, grid_size, fast=True,
            moves_per_temperature=moves, schedule=schedule, seed=seed,
            backend=resolved, observer=observer,
        )
        observer.finalize()
    obs_identical = (
        obs_result.n_moves == fast_result.n_moves
        and obs_result.n_accepted == fast_result.n_accepted
        and math.isclose(
            obs_result.cost, fast_result.cost, rel_tol=1e-12, abs_tol=1e-12
        )
    )
    obs_overhead_pct = round(100.0 * (obs_wall - fast_wall) / fast_wall, 2)

    hit_rates = {
        cname: round(s.hit_rate, 4) for cname, s in stats.items() if s.lookups
    }
    evictions = {
        cname: s.evictions for cname, s in stats.items() if s.lookups
    }
    accounting_ok = all(
        s.hits + s.misses == s.lookups and s.size <= s.maxsize
        for s in stats.values()
    )
    fast_counters = fast_result.perf.counters
    ledger_counters = {
        key: fast_counters.get(key, 0)
        for key in (
            "ledger_hits",
            "congestion_delta",
            "congestion_grid_rebuilt",
        )
    }

    row = {
        "name": name,
        "modules": n_modules,
        "nets": n_nets,
        "backend_requested": resolved.requested,
        "backend_used": resolved.name,
        "moves": fast_result.n_moves,
        "evaluations": evals_fast,
        "seed_wall_seconds": round(seed_wall, 3),
        "fast_wall_seconds": round(fast_wall, 3),
        "noledger_wall_seconds": round(noledger_wall, 3),
        "seed_moves_per_sec": round(seed_result.n_moves / seed_wall, 2),
        "fast_moves_per_sec": round(fast_result.n_moves / fast_wall, 2),
        "noledger_moves_per_sec": round(
            noledger_result.n_moves / noledger_wall, 2
        ),
        "speedup": round(seed_wall / fast_wall, 3),
        "ledger_gain": round(noledger_wall / fast_wall, 3),
        "seed_best_cost": seed_result.cost,
        "fast_best_cost": fast_result.cost,
        "noledger_best_cost": noledger_result.cost,
        "results_agree": agree,
        "strict_ok": strict_ok,
        "accounting_ok": accounting_ok,
        "cache_hit_rates": hit_rates,
        "cache_evictions": evictions,
        "ledger_counters": ledger_counters,
        "obs_wall_seconds": round(obs_wall, 3),
        "obs_moves_per_sec": round(obs_result.n_moves / obs_wall, 2),
        "obs_overhead_pct": obs_overhead_pct,
        "obs_walk_identical": obs_identical,
    }
    print(
        f"{name} [{row['backend_used']}]: "
        f"seed {row['seed_moves_per_sec']:.1f} moves/s, "
        f"fast {row['fast_moves_per_sec']:.1f} moves/s "
        f"(no ledger {row['noledger_moves_per_sec']:.1f}), "
        f"speedup {row['speedup']:.2f}x "
        f"(ledger gain {row['ledger_gain']:.2f}x), "
        f"net_mass hit rate {hit_rates.get('net_mass', 0.0):.1%}, "
        f"exact_prob hit rate {hit_rates.get('exact_prob', 0.0):.1%}, "
        f"agree={agree} strict={strict_ok}, "
        f"obs overhead {obs_overhead_pct:+.1f}% "
        f"(identical={obs_identical}), "
        f"ledger {ledger_counters['congestion_delta']}/"
        f"{ledger_counters['congestion_delta'] + ledger_counters['congestion_grid_rebuilt']}"
        f" delta evals, evictions {sum(evictions.values())}"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced schedule; exit non-zero on accounting or agreement "
        "regressions (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_incremental.json in the "
        "repository root; smoke mode defaults to not writing)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba", "python"),
        default="numpy",
        help="kernel backend for the fast-side runs (the seed side always "
        "uses the reference numpy path); 'numba' falls back to numpy "
        "with a warning when numba is not installed",
    )
    args = parser.parse_args(argv)

    workloads = [("ami33-scale", 33, 120), ("ami49-scale", 49, 200)]
    rows = [
        bench_workload(name, m, n, smoke=args.smoke, backend=args.backend)
        for name, m, n in workloads
    ]

    payload = {
        "benchmark": "incremental annealing evaluation",
        "smoke": args.smoke,
        "backend_requested": rows[0]["backend_requested"],
        "backend_used": rows[0]["backend_used"],
        "workloads": rows,
        "min_speedup": min(r["speedup"] for r in rows),
        "strict_ok": all(r["strict_ok"] for r in rows),
        "results_agree": all(r["results_agree"] for r in rows),
        "accounting_ok": all(r["accounting_ok"] for r in rows),
        "obs_walk_identical": all(r["obs_walk_identical"] for r in rows),
        "max_obs_overhead_pct": max(r["obs_overhead_pct"] for r in rows),
    }

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
    if out is not None:
        atomic_write_json(out, payload)
        print(f"wrote {out}")

    failures = []
    if not payload["accounting_ok"]:
        failures.append("cache hit/miss accounting is inconsistent")
    if not payload["results_agree"]:
        failures.append("incremental and seed evaluators disagree")
    if not payload["strict_ok"]:
        failures.append("strict-mode delta/full agreement failed")
    if not payload["obs_walk_identical"]:
        failures.append("observability-on walk diverged from the plain walk")
    # Throughput gate only on full-length runs; smoke schedules are too
    # short for wall-clock percentages to mean anything.
    if not args.smoke and payload["max_obs_overhead_pct"] >= 5.0:
        failures.append(
            "observability overhead "
            f"{payload['max_obs_overhead_pct']:.1f}% exceeds the 5% budget"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
