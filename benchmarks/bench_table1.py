"""Table 1: the area+wirelength floorplanner (no congestion term).

Regenerates the paper's Table 1 rows -- per circuit: average/best area,
wirelength, run time and fine-grid judged congestion over the profile's
seeds.  The timed quantity is one full baseline annealing run on the
smallest circuit (the per-run cost the paper's 'time' column reports).
"""

from repro.anneal import FloorplanObjective
from repro.data import load_mcnc
from repro.experiments.exp1 import Experiment1Row
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table


def test_table1(benchmark, experiment1_rows, profile, record_artifact):
    rows = []
    for name, row in experiment1_rows.items():
        b = row.baseline
        rows.append(
            [
                name,
                b.avg_area_mm2,
                b.avg_wirelength_um,
                b.avg_runtime_seconds,
                b.avg_judging_cost,
                b.best.area_mm2,
                b.best.wirelength_um,
                b.best.judging_cost,
            ]
        )
    text = format_table(
        [
            "circuit",
            "avg area mm2",
            "avg WL um",
            "avg time s",
            "avg judging cgt",
            "best area mm2",
            "best WL um",
            "best judging cgt",
        ],
        rows,
        title=f"Table 1 (profile {profile.name}, {profile.n_seeds} seeds): "
        "area+wirelength floorplanner",
    )
    record_artifact("table1", text)

    netlist = load_mcnc("hp")

    def one_baseline_run():
        objective = FloorplanObjective(netlist, alpha=1.0, beta=1.0, pin_grid_size=30.0)
        return run_once(
            netlist, objective, seed=0, profile=profile, judging_grid_size=10.0
        )

    record = benchmark.pedantic(one_baseline_run, rounds=1, iterations=1)
    assert record.area_um2 > 0
