#!/usr/bin/env python
"""Microbenchmark the compiled kernels against their numpy references.

Five hot-path kernels, each timed standalone on synthetic inputs sized
like a real annealing move's dirty-net batch:

* ``batched_mass``: Theorem-1/Formula-3 congestion mass over a net
  batch -- :func:`repro.congestion.batched.batched_approx_mass` with
  the numpy path versus one flat-CSR kernel call;
* ``mst``: per-net Prim MST edge extraction --
  :func:`repro.netlist.batched_mst_edges` versus
  :func:`repro.backend.kernels.mst_fill` (edge lists must be
  bit-identical, tie-breaking included);
* ``wirelength``: weighted Manhattan edge-length reduction;
* ``pin_scatter``: perimeter pin placement + lattice snap
  (:class:`repro.anneal.pipeline.PinStage`) -- numpy-only today,
  timed for the record (``speedup`` is null, and the row's
  ``backend_used`` records ``"numpy"`` explicitly);
* ``scatter_accumulate``: input-order ``out[index] += values`` with
  repeated indices -- the congestion ledger's delta-apply primitive
  (:func:`repro.backend.kernels.scatter_accumulate`) versus
  ``np.add.at``.

The kernel side runs through the ``"python"`` backend: the same
functions numba compiles where it is installed, interpreted otherwise.
``BENCH_kernels.json`` therefore records honest numbers either way --
``compiled`` says which flavour ran.  Every kernel result is checked
against the reference (<= 1e-9, MST bitwise) and the script exits
non-zero on disagreement.

``--smoke`` shrinks sizes and repetitions for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.anneal.pipeline import PinStage, PinTopology  # noqa: E402
from repro.backend import make_backend  # noqa: E402
from repro.backend.kernels import HAVE_NUMBA  # noqa: E402
from repro.congestion.batched import batched_approx_mass  # noqa: E402
from repro.congestion.irgrid import build_irgrid  # noqa: E402
from repro.floorplan import Floorplan  # noqa: E402
from repro.geometry import Point, Rect  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import (  # noqa: E402
    TwoPinNet,
    batched_mst_edges,
    random_circuit,
)

CHIP = Rect(0.0, 0.0, 600.0, 600.0)


def _best_of(fn, reps):
    """Best wall time over ``reps`` calls (first call pays any JIT)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _row(kernel, n, reps, ref_seconds, kernel_seconds, agree, backend_used):
    speedup = (
        None
        if kernel_seconds is None
        else round(ref_seconds / kernel_seconds, 3)
    )
    row = {
        "kernel": kernel,
        "n": n,
        "reps": reps,
        "backend_used": backend_used,
        "numpy_seconds": round(ref_seconds, 6),
        "kernel_seconds": (
            None if kernel_seconds is None else round(kernel_seconds, 6)
        ),
        "speedup": speedup,
        "agree": agree,
    }
    shown = "n/a" if speedup is None else f"{speedup:.2f}x"
    print(
        f"{kernel}: numpy {ref_seconds * 1e3:.3f} ms, kernel "
        + (
            "n/a"
            if kernel_seconds is None
            else f"{kernel_seconds * 1e3:.3f} ms"
        )
        + f", speedup {shown}, agree={agree}"
    )
    return row


def bench_batched_mass(backend, n_nets, reps, rng):
    nets = []
    for i in range(n_nets):
        x1, y1, x2, y2 = rng.uniform(0.0, 600.0, 4)
        nets.append(TwoPinNet(f"n{i}", Point(x1, y1), Point(x2, y2)))
    irgrid = build_irgrid(CHIP, nets, 30.0, 2.0)
    ref = batched_approx_mass(irgrid, nets, 30.0)
    got = batched_approx_mass(irgrid, nets, 30.0, backend=backend)
    agree = bool(np.allclose(got, ref, rtol=1e-9, atol=1e-9))
    ref_s = _best_of(lambda: batched_approx_mass(irgrid, nets, 30.0), reps)
    ker_s = _best_of(
        lambda: batched_approx_mass(irgrid, nets, 30.0, backend=backend),
        reps,
    )
    return _row(
        "batched_mass", n_nets, reps, ref_s, ker_s, agree, backend.name
    )


def bench_mst(backend, n_groups, reps, rng):
    k = 6
    # Snapped coordinates produce frequent distance ties; the kernel
    # must replicate the numpy path's first-minimum tie-breaking.
    xs = rng.integers(0, 12, size=(n_groups, k)).astype(float) * 30.0
    ys = rng.integers(0, 12, size=(n_groups, k)).astype(float) * 30.0
    ref_i, ref_j = batched_mst_edges(xs, ys)
    out_i = np.empty((n_groups, k - 1), dtype=np.int64)
    out_j = np.empty((n_groups, k - 1), dtype=np.int64)
    backend.mst_kernel(xs, ys, out_i, out_j)
    agree = bool((out_i == ref_i).all() and (out_j == ref_j).all())
    ref_s = _best_of(lambda: batched_mst_edges(xs, ys), reps)
    ker_s = _best_of(
        lambda: backend.mst_kernel(xs, ys, out_i, out_j), reps
    )
    return _row("mst", n_groups, reps, ref_s, ker_s, agree, backend.name)


def bench_wirelength(backend, n_edges, reps, rng):
    w = rng.uniform(0.5, 2.0, n_edges)
    p1x, p1y, p2x, p2y = rng.uniform(0.0, 600.0, (4, n_edges))

    def ref_fn():
        return float(
            (w * (np.abs(p2x - p1x) + np.abs(p2y - p1y))).sum()
        )

    ref = ref_fn()
    got = backend.wirelength_kernel(w, p1x, p1y, p2x, p2y)
    agree = bool(abs(got - ref) <= 1e-9 * max(abs(ref), 1.0))
    ref_s = _best_of(ref_fn, reps)
    ker_s = _best_of(
        lambda: backend.wirelength_kernel(w, p1x, p1y, p2x, p2y), reps
    )
    return _row(
        "wirelength", n_edges, reps, ref_s, ker_s, agree, backend.name
    )


def bench_pin_scatter(n_modules, reps, rng):
    netlist = random_circuit(n_modules, 4 * n_modules, seed=int(rng.integers(1 << 30)))
    # Non-overlapping row-major placement of every module.
    cols = int(np.ceil(np.sqrt(n_modules)))
    side = 40.0
    placements = {}
    for i, module in enumerate(netlist.modules):
        x = (i % cols) * side
        y = (i // cols) * side
        w = min(module.area**0.5, side * 0.9)
        placements[module.name] = Rect(x, y, x + w, y + w)
    floorplan = Floorplan(placements)
    topology = PinTopology(netlist, floorplan.module_names)
    stage = PinStage(pin_grid_size=15.0)
    n_pins = len(topology.term_idx)
    ref_s = _best_of(lambda: stage.compute(floorplan, topology), reps)
    # PinStage has no compiled kernel; say so in the provenance rather
    # than leaving readers to infer it from the null speedup.
    return _row("pin_scatter", n_pins, reps, ref_s, None, True, "numpy")


def bench_scatter(backend, n_updates, reps, rng):
    # Sized like a ledger delta apply: dirty edges' CSR blocks scatter
    # into a flat mass vector of a few thousand cells, indices heavily
    # repeated (many edges cover the same cells).
    n_cells = max(n_updates // 8, 16)
    index = rng.integers(0, n_cells, size=n_updates).astype(np.int64)
    values = rng.standard_normal(n_updates)

    def ref_fn():
        out = np.zeros(n_cells)
        np.add.at(out, index, values)
        return out

    def ker_fn():
        out = np.zeros(n_cells)
        backend.scatter_kernel(index, values, out)
        return out

    agree = bool(np.array_equal(ref_fn(), ker_fn()))
    ref_s = _best_of(ref_fn, reps)
    ker_s = _best_of(ker_fn, reps)
    return _row(
        "scatter_accumulate", n_updates, reps, ref_s, ker_s, agree,
        backend.name,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes / few reps; exit non-zero on any kernel "
        "disagreement (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_kernels.json in the "
        "repository root; smoke mode defaults to not writing)",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(7)
    backend = make_backend("python")
    reps = 3 if args.smoke else 20
    scale = 1 if args.smoke else 8

    rows = [
        bench_batched_mass(backend, 25 * scale, reps, rng),
        bench_mst(backend, 50 * scale, reps, rng),
        bench_wirelength(backend, 500 * scale, reps, rng),
        bench_pin_scatter(12 * scale, reps, rng),
        bench_scatter(backend, 2000 * scale, reps, rng),
    ]

    payload = {
        "benchmark": "per-kernel microbenchmarks",
        "smoke": args.smoke,
        "backend": backend.name,
        "compiled": backend.compiled,
        "have_numba": HAVE_NUMBA,
        "jit_compile_seconds": round(backend.jit_seconds, 6),
        "kernels": rows,
        "all_agree": all(r["agree"] for r in rows),
    }

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    if out is not None:
        atomic_write_json(out, payload)
        print(f"wrote {out}")

    if not payload["all_agree"]:
        print("FAIL: kernel and numpy paths disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
