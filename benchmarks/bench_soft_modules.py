"""Extension bench: soft vs hard modules under the same floorplanner.

The paper floorplans hard MCNC blocks.  Softening the modules (same
areas, flexible aspect ratio) gives the packer freedom the congestion
model can exploit: tighter chips with comparable or better congestion.
This bench quantifies the whitespace/wirelength/congestion deltas and
times the soft-module packing (larger shape lists per leaf).
"""

import random

from repro.congestion import IrregularGridModel, JudgingModel
from repro.data import load_mcnc
from repro.experiments.config import ExperimentProfile
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table
from repro.anneal import FloorplanObjective
from repro.floorplan import evaluate_polish, initial_expression
from repro.netlist import soften

PROFILE = ExperimentProfile(
    name="soft",
    n_seeds=1,
    moves_factor=3,
    cooling_rate=0.8,
    freeze_ratio=5e-3,
    max_steps=20,
)


def test_soft_vs_hard(benchmark, record_artifact):
    hard = load_mcnc("hp")
    soft = soften(hard, min_aspect=0.4, max_aspect=2.5, n_shapes=6)
    rows = []
    for label, netlist in (("hard", hard), ("soft", soft)):
        objective = FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(30.0),
        )
        record = run_once(
            netlist, objective, seed=0, profile=PROFILE, judging_grid_size=10.0
        )
        rows.append(
            [
                label,
                record.area_mm2,
                f"{100 * record.floorplan.whitespace_fraction:.1f}%",
                record.wirelength_um,
                record.judging_cost,
            ]
        )
    text = format_table(
        ["modules", "area mm2", "whitespace", "wirelength um", "judged cgt"],
        rows,
        title="Soft vs hard modules (hp, congestion-aware floorplanner)",
    )
    record_artifact("soft_modules", text)

    # Softening must reduce the packed area (more shapes per leaf).
    hard_area, soft_area = rows[0][1], rows[1][1]
    assert soft_area <= hard_area * 1.05

    # Timed quantity: packing a soft-module expression.
    modules = {m.name: m for m in soft.modules}
    expr = initial_expression(list(modules), random.Random(0))
    benchmark(evaluate_polish, expr, modules)
