#!/usr/bin/env python
"""Benchmark the floorplanning service's end-to-end delivery path.

Three measurements over a live server (real sockets, real journal,
real worker pool) per worker count (1/2/4):

* **throughput** -- jobs per minute for a batch of distinct jobs
  submitted at once through the HTTP client;
* **latency** -- p50/p95 of submit-to-result wall time per job;
* **cache-hit latency** -- the same content resubmitted under a fresh
  idempotency key: the service must answer from the content-addressed
  store in milliseconds without a worker ever seeing the job.

Plus the **journal overhead**: microseconds per fsynced append on the
submit path and the cost of replaying the full journal at startup --
the price of crash-safety, measured rather than guessed.

The pass/fail gates are structural, never wall-clock:

* every job's stored result is **bit-identical** to a direct
  uninterrupted :class:`~repro.engine.engine.AnnealEngine` run of the
  same spec, at every worker count (``results_agree``);
* every cache hit returns exactly the first run's payload;
* a fresh :class:`~repro.service.queue.JobQueue` replaying the
  benchmark's journal reconstructs every job.

Results go to ``BENCH_service.json`` (see ``--out``)::

    {"legs": [{"workers": 1, "jobs_per_minute": ..., "p50_seconds": ...,
               "p95_seconds": ..., "cache_hit_seconds": ...}, ...],
     "journal": {"append_us": ..., "replay_seconds": ..., "n_records": ...},
     "results_agree": true}
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import dumps_yal  # noqa: E402
from repro.engine.engine import AnnealEngine  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402
from repro.service import (  # noqa: E402
    FloorplanService,
    JobQueue,
    JobSpec,
    ServiceClient,
    ServiceThread,
    result_payload,
)


def make_specs(n_jobs: int, smoke: bool) -> list[dict]:
    yal = dumps_yal(random_circuit(8 if smoke else 12, 16, seed=5))
    return [
        {
            "netlist_yal": yal,
            "seed": 50 + i,
            "max_steps": 10 if smoke else 40,
            "moves_per_temperature": 20 if smoke else 60,
            "checkpoint_every": 5,
        }
        for i in range(n_jobs)
    ]


def direct_result(spec_json: dict) -> dict:
    spec = JobSpec.from_json(spec_json)
    engine = AnnealEngine(
        spec.build_netlist(),
        representation=spec.representation,
        objective_spec=spec.objective_spec(),
        seed=spec.seed,
        moves_per_temperature=spec.moves_per_temperature,
        schedule=spec.schedule(),
    )
    return result_payload(engine.run(), spec)


def percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def bench_leg(workers: int, specs: list[dict], expected: list[dict]):
    root = Path(tempfile.mkdtemp(prefix=f"bench-service-{workers}w-"))
    service = FloorplanService(root, workers=workers)
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)
    agree = True
    try:
        submitted_at = {}
        batch_started = time.perf_counter()
        job_ids = []
        for spec in specs:
            job_id = client.submit(spec)["job_id"]
            submitted_at[job_id] = time.perf_counter()
            job_ids.append(job_id)
        latencies = []
        for job_id, want in zip(job_ids, expected):
            got = client.wait(job_id, timeout=600)
            latencies.append(time.perf_counter() - submitted_at[job_id])
            agree = agree and got == want
        elapsed = time.perf_counter() - batch_started

        # Cache hit: same content, fresh idempotency key, no worker.
        cache_started = time.perf_counter()
        hit = client.submit({**specs[0], "idempotency_key": "cache-probe"})
        cached = client.result(hit["job_id"])
        cache_seconds = time.perf_counter() - cache_started
        agree = agree and hit["cached"] and cached == expected[0]
    finally:
        thread.stop(drain=True)
    latencies.sort()
    return {
        "workers": workers,
        "n_jobs": len(specs),
        "jobs_per_minute": round(len(specs) / elapsed * 60.0, 2),
        "p50_seconds": round(percentile(latencies, 0.50), 4),
        "p95_seconds": round(percentile(latencies, 0.95), 4),
        "cache_hit_seconds": round(cache_seconds, 4),
    }, agree


def bench_journal(specs: list[dict]):
    """The WAL's price: per-append cost and startup replay cost."""
    root = Path(tempfile.mkdtemp(prefix="bench-service-journal-"))
    queue = JobQueue(root, compact_every=10**9)  # never compact mid-bench
    parsed = [JobSpec.from_json(s) for s in specs]
    started = time.perf_counter()
    for spec in parsed:
        queue.submit(spec)
    append_seconds = time.perf_counter() - started
    n_records = len(parsed)

    started = time.perf_counter()
    revived = JobQueue(root)
    replay_seconds = time.perf_counter() - started
    ok = len(revived.jobs) == n_records
    return {
        "n_records": n_records,
        "append_us": round(append_seconds / n_records * 1e6, 1),
        "replay_seconds": round(replay_seconds, 4),
        "journal_bytes": (root / "journal.jsonl").stat().st_size,
    }, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced schedule for CI (tiny jobs, 2 legs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="jobs per leg"
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    worker_counts = (1, 2) if args.smoke else (1, 2, 4)
    n_jobs = args.jobs or (4 if args.smoke else 12)
    specs = make_specs(n_jobs, args.smoke)
    print(f"direct runs ({n_jobs} jobs) ...", flush=True)
    expected = [direct_result(spec) for spec in specs]

    legs, failures = [], []
    for workers in worker_counts:
        print(f"leg: {workers} worker(s), {n_jobs} jobs ...", flush=True)
        leg, agree = bench_leg(workers, specs, expected)
        legs.append(leg)
        if not agree:
            failures.append(f"{workers}-worker leg diverged from direct runs")
        print(
            f"  {leg['jobs_per_minute']} jobs/min, "
            f"p50 {leg['p50_seconds']}s, p95 {leg['p95_seconds']}s, "
            f"cache hit {leg['cache_hit_seconds']}s"
        )

    journal, journal_ok = bench_journal(make_specs(50, smoke=True))
    if not journal_ok:
        failures.append("journal replay lost records")
    print(
        f"journal: {journal['append_us']}us/append, "
        f"replay of {journal['n_records']} records in "
        f"{journal['replay_seconds']}s"
    )

    report = {
        "legs": legs,
        "journal": journal,
        "results_agree": not failures,
        "failures": failures,
    }
    out = args.out or (
        Path(__file__).resolve().parent.parent / "BENCH_service.json"
    )
    atomic_write_json(out, report)
    print(f"wrote {out}")
    if failures:
        print("FAILURES:", *failures, sep="\n  ")
        return 1
    print("service benchmark ok: all legs bit-identical to direct runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
