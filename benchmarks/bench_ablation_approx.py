"""Ablation A1: Theorem 1 vs Formula 3 -- accuracy and cost vs size.

Three questions the paper's Section 4.4/4.5 raises but only partially
quantifies:

1. how does the approximation's worst-case deviation scale with routing
   range size (paper: 'generally less than 0.05');
2. how does its evaluation cost compare with the exact boundary sum as
   IR-grids grow (the constant-time claim);
3. how much accuracy do the paper's literal integration bounds
   ``[x1, x2]`` give up against the midpoint-corrected default.
"""

import pytest

from repro.congestion import (
    ApproximationDomainError,
    approx_ir_probability,
    exact_ir_probability,
)
from repro.experiments.tables import format_table
from repro.netlist import NetType

SIZES = (8, 16, 32, 64, 128)


def _worst_deviation(g, paper_bounds):
    worst = 0.0
    step = max(1, g // 8)
    for x1 in range(1, g - 2, step):
        for y1 in range(1, g - 2, step):
            x2 = min(x1 + g // 4, g - 2)
            y2 = min(y1 + g // 4, g - 2)
            exact = exact_ir_probability(g, g, NetType.TYPE_I, x1, x2, y1, y2)
            try:
                approx = approx_ir_probability(
                    g, g, NetType.TYPE_I, x1, x2, y1, y2, paper_bounds=paper_bounds
                )
            except ApproximationDomainError:
                continue
            worst = max(worst, abs(approx - exact))
    return worst


def test_accuracy_vs_size(benchmark, record_artifact):
    rows = []
    for g in SIZES:
        corrected = _worst_deviation(g, paper_bounds=False)
        paper = _worst_deviation(g, paper_bounds=True)
        rows.append([f"{g}x{g}", f"{corrected:.4f}", f"{paper:.4f}"])
    text = format_table(
        ["range", "max |dev| (midpoint bounds)", "max |dev| (paper bounds)"],
        rows,
        title="A1: approximation deviation vs routing-range size",
    )
    record_artifact("ablation_approx_accuracy", text)
    # The paper's bound holds for the midpoint-corrected default.
    for row in rows:
        assert float(row[1]) < 0.05

    # Timed quantity: one deviation scan at the mid size.
    benchmark.pedantic(
        _worst_deviation, args=(32, False), rounds=1, iterations=1
    )


@pytest.mark.parametrize("g", SIZES)
def test_exact_cost_grows(benchmark, g):
    """Exact Formula 3 cost is O(IR-grid span)."""
    benchmark(
        exact_ir_probability, g, g, NetType.TYPE_I, 1, g // 2, 1, g // 2
    )


@pytest.mark.parametrize("g", SIZES)
def test_approx_cost_flat(benchmark, g):
    """Theorem 1 cost is constant in the IR-grid span."""
    benchmark(
        approx_ir_probability, g, g, NetType.TYPE_I, 1, g // 2, 1, g // 2
    )
