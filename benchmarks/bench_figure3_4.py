"""Figures 3-4: the fixed-grid model's pitch sensitivity (motivation).

The paper motivates the Irregular-Grid with two observations on small
examples: (a) the fixed grid's congestion picture changes materially
with the pitch (Figure 3: 4x4 vs 6x6), and (b) at fine pitch most cells
carry at most one net -- wasted evaluation (Figure 4: 6x4 vs 12x8).
This bench regenerates both observations and times the underlying
fixed-grid evaluations.
"""

from repro.experiments.figures import grid_sensitivity, motivation_nets
from repro.experiments.tables import format_table


def test_figure3_pitch_sensitivity(benchmark, record_artifact):
    chip, nets = motivation_nets("figure3")

    def evaluate_both():
        return (
            grid_sensitivity(chip, nets, (4, 4)),
            grid_sensitivity(chip, nets, (6, 6)),
        )

    coarse, fine = benchmark(evaluate_both)
    text = format_table(
        ["grid", "top-10% score", "max cell mass", "<=1-net cells"],
        [
            [
                f"{r.n_cols}x{r.n_rows}",
                r.score,
                r.max_mass,
                f"{100 * r.single_net_cell_fraction:.0f}%",
            ]
            for r in (coarse, fine)
        ],
        title="Figure 3: the same five nets at two fixed-grid pitches",
    )
    record_artifact("figure3", text)
    # The motivation: the pitch changes the verdict materially.
    ratio = coarse.score / fine.score
    assert ratio > 1.1 or ratio < 0.9


def test_figure4_wasted_cells(benchmark, record_artifact):
    chip, nets = motivation_nets("figure4")

    def evaluate_both():
        return (
            grid_sensitivity(chip, nets, (6, 4)),
            grid_sensitivity(chip, nets, (12, 8)),
        )

    coarse, fine = benchmark(evaluate_both)
    text = format_table(
        ["grid", "top-10% score", "max cell mass", "<=1-net cells"],
        [
            [
                f"{r.n_cols}x{r.n_rows}",
                r.score,
                r.max_mass,
                f"{100 * r.single_net_cell_fraction:.0f}%",
            ]
            for r in (coarse, fine)
        ],
        title="Figure 4: right-half-concentrated nets at two pitches",
    )
    record_artifact("figure4", text)
    # Paper: "more than a half of grids only being passed through by
    # one net" on the fine cut.
    assert fine.single_net_cell_fraction > 0.5
