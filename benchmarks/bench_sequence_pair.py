"""Extension bench: the congestion model inside a non-slicing floorplanner.

Section 4.6 claims the model embeds into "any general floorplanners".
This bench runs the same congestion-aware objective under the Wong-Liu
slicing annealer and the sequence-pair annealer on the same circuit and
compares the judged outcomes -- the model is representation-agnostic if
both floorplanners can trade area for judged congestion the same way.
"""

from repro.anneal import FloorplanObjective, GeometricSchedule
from repro.congestion import IrregularGridModel, JudgingModel
from repro.engine import AnnealEngine
from repro.data import load_mcnc
from repro.experiments.tables import format_table

CIRCUIT = "hp"
SCHEDULE = GeometricSchedule(cooling_rate=0.8, freeze_ratio=5e-3, max_steps=20)


def _objective(netlist):
    return FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=1.0,
        congestion_model=IrregularGridModel(30.0),
    )


def test_slicing_vs_sequence_pair(benchmark, record_artifact):
    netlist = load_mcnc(CIRCUIT)
    judge = JudgingModel(grid_size=10.0)
    moves = 3 * netlist.n_modules

    slicing = AnnealEngine(
        netlist,
        representation="polish",
        objective=_objective(netlist),
        seed=0,
        schedule=SCHEDULE,
        moves_per_temperature=moves,
    ).run()
    seq_pair = AnnealEngine(
        netlist,
        representation="sp",
        objective=_objective(netlist),
        seed=0,
        schedule=SCHEDULE,
        moves_per_temperature=moves,
    ).run()

    rows = []
    for label, result in (("slicing", slicing), ("sequence-pair", seq_pair)):
        result.floorplan.validate()
        rows.append(
            [
                label,
                result.breakdown.area / 1e6,
                f"{100 * result.floorplan.whitespace_fraction:.1f}%",
                result.breakdown.wirelength,
                result.breakdown.congestion,
                judge.judge(result.floorplan, netlist),
                f"{result.runtime_seconds:.1f}",
            ]
        )
    text = format_table(
        [
            "floorplanner",
            "area mm2",
            "whitespace",
            "wirelength um",
            "IR cgt",
            "judged cgt",
            "time s",
        ],
        rows,
        title=f"Congestion-aware slicing vs sequence-pair annealing ({CIRCUIT})",
    )
    record_artifact("sequence_pair", text)

    # Both representations must land in the same quality regime.
    judged = [float(r[5]) for r in rows]
    assert max(judged) <= 3.0 * min(judged)

    # Timed quantity: one sequence-pair packing + objective evaluation.
    objective = _objective(netlist)
    objective.calibrate(seed=0)
    pair = seq_pair.state
    modules = {m.name: m for m in netlist.modules}

    def evaluate_pair():
        from repro.floorplan import pack_sequence_pair

        return objective.evaluate_floorplan(pack_sequence_pair(pair, modules))

    benchmark(evaluate_pair)
