"""Figure 8: exact vs approximate Function (1) curves.

Regenerates both panels of the paper's Figure 8 -- the interior IR-grid
where the approximation is 'extremely accurate' and the corner IR-grid
with the error grid at x = 30 -- and times the two pointwise evaluators
(the approximation's constant-time advantage grows with range size; see
bench_ablation_approx for the sweep).
"""

from repro.congestion.approx import (
    approx_function1_pointwise,
    exact_function1_pointwise,
)
from repro.experiments.figures import figure8_default_cases
from repro.experiments.tables import format_table


def _render(series, label):
    rows = [
        [
            p.x,
            f"{p.exact:.6f}",
            "n/a" if p.approx is None else f"{p.approx:.6f}",
            "n/a" if p.deviation is None else f"{p.deviation:.6f}",
        ]
        for p in series
    ]
    return format_table(
        ["x", "exact", "approx", "|deviation|"],
        rows,
        title=f"Figure 8 {label} (31x21 type-I routing range)",
    )


def test_figure8_curves(benchmark, record_artifact):
    case_b, case_d = benchmark(figure8_default_cases)
    text = "\n\n".join(
        [
            _render(case_b, "(b) interior IR-grid, y2 = 15"),
            _render(case_d, "(d) corner IR-grid, y2 = 19"),
        ]
    )
    record_artifact("figure8", text)

    # Reproduction assertions: the paper's qualitative shape.
    assert all(p.deviation < 0.01 for p in case_b)
    assert case_d[-1].approx is None  # no value at the error grid
    assert all(p.deviation < 0.05 for p in case_d[:-1])


def test_figure8_pointwise_exact(benchmark):
    value = benchmark(exact_function1_pointwise, 15, 31, 21, 15)
    assert value > 0


def test_figure8_pointwise_approx(benchmark):
    value = benchmark(approx_function1_pointwise, 15, 31, 21, 15)
    assert value > 0
