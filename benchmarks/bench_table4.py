"""Table 4: congestion-only floorplanning with the Irregular-Grid model.

Regenerates the paper's Table 4 (ami33): IR-grid count, the model's own
congestion cost, run time and fine-judged congestion for a floorplanner
whose *only* objective is the IR congestion cost.  The timed quantity
is one such annealing run.
"""

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.config import circuit_config
from repro.experiments.runner import aggregate, run_once, run_seeds
from repro.experiments.tables import format_table

CIRCUIT = "ami33"


def test_table4(benchmark, profile, record_artifact):
    netlist = load_mcnc(CIRCUIT)
    cfg = circuit_config(CIRCUIT)

    def objective():
        return FloorplanObjective(
            netlist,
            alpha=0.0,
            beta=0.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(cfg.ir_grid_size),
        )

    records = run_seeds(netlist, objective, profile, cfg.judging_grid_size)
    agg = aggregate(records)
    text = format_table(
        [
            "grid um",
            "# IR-grids avg",
            "avg IR cgt cost",
            "avg time s",
            "avg judging cgt",
            "best IR cgt cost",
            "best time s",
            "best judging cgt",
        ],
        [
            [
                f"{cfg.ir_grid_size:g}x{cfg.ir_grid_size:g}",
                agg.avg_n_irgrids,
                agg.avg_congestion_cost,
                agg.avg_runtime_seconds,
                agg.avg_judging_cost,
                agg.best.congestion_cost,
                agg.best.runtime_seconds,
                agg.best.judging_cost,
            ]
        ],
        title=f"Table 4 (profile {profile.name}, {profile.n_seeds} seeds): "
        f"Irregular-Grid congestion-only floorplanner ({CIRCUIT})",
    )
    record_artifact("table4", text)

    record = benchmark.pedantic(
        lambda: run_once(
            netlist,
            objective(),
            seed=0,
            profile=profile,
            judging_grid_size=cfg.judging_grid_size,
        ),
        rounds=1,
        iterations=1,
    )
    assert record.n_irgrids > 0
