"""Ablation A2: the cut-line merge threshold (Algorithm step 2).

The paper merges cut lines closer than *twice* the unit-grid pitch.
This ablation sweeps the merge factor on real ami33 floorplans and
reports the resulting IR-grid count, evaluation time, and score drift
relative to the unmerged (factor 0) reference -- quantifying the
accuracy/effort trade the fixed "double" threshold buys.
"""

import random
import time

from repro.congestion import IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish, initial_expression
from repro.pins import assign_pins

FACTORS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def _instance(seed=0):
    circuit = load_mcnc("ami33")
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(seed)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, 30.0)
    return floorplan, assignment


def test_merge_factor_sweep(benchmark, record_artifact):
    floorplan, assignment = _instance()
    nets = assignment.two_pin_nets

    reference_model = IrregularGridModel(30.0, merge_factor=0.0)
    reference = reference_model.estimate(floorplan.chip, nets)

    rows = []
    timings = {}
    for factor in FACTORS:
        model = IrregularGridModel(30.0, merge_factor=factor)
        _, irgrid = model.evaluate_with_grid(floorplan.chip, nets)
        t0 = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            score = model.estimate(floorplan.chip, nets)
        elapsed_ms = (time.perf_counter() - t0) / repeats * 1e3
        timings[factor] = elapsed_ms
        drift = abs(score - reference) / reference if reference else 0.0
        rows.append(
            [
                factor,
                irgrid.n_cells,
                f"{elapsed_ms:.1f}",
                f"{score:.6g}",
                f"{100 * drift:.1f}%",
            ]
        )
    text = format_table(
        ["merge factor", "# IR-grids", "eval ms", "score", "drift vs factor 0"],
        rows,
        title="A2: cut-line merge threshold sweep (ami33, 30 um units)",
    )
    record_artifact("ablation_merge", text)

    # Merging must shrink the grid monotonically.
    cell_counts = [r[1] for r in rows]
    assert cell_counts == sorted(cell_counts, reverse=True)

    # The timed quantity: evaluation at the paper's factor 2.
    model = IrregularGridModel(30.0, merge_factor=2.0)
    benchmark(model.estimate, floorplan.chip, nets)
