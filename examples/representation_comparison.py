"""One congestion model, three floorplanners.

Run:  python examples/representation_comparison.py [circuit]

Section 4.6 of the paper claims the Irregular-Grid congestion model
"can be embedded into any general floorplanners".  This example anneals
the same circuit under the same congestion-aware objective with all
three classic representations -- Wong-Liu slicing trees, sequence pairs
and B*-trees -- and compares what each hands back.
"""

import sys

from repro import AnnealEngine, JudgingModel, load_mcnc
from repro.anneal import FloorplanObjective, GeometricSchedule
from repro.congestion import IrregularGridModel
from repro.experiments.tables import format_table

SCHEDULE = GeometricSchedule(cooling_rate=0.85, freeze_ratio=1e-2, max_steps=25)


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "hp"
    circuit = load_mcnc(circuit_name)
    grid_size = 60.0 if circuit_name == "apte" else 30.0
    judge = JudgingModel(grid_size=10.0)
    moves = 4 * circuit.n_modules

    def objective():
        return FloorplanObjective(
            circuit,
            alpha=1.0,
            beta=1.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(grid_size),
        )

    representations = (
        ("slicing (Wong-Liu)", "polish"),
        ("sequence pair", "sp"),
        ("B*-tree", "btree"),
    )
    rows = []
    for label, name in representations:
        result = AnnealEngine(
            circuit,
            representation=name,
            objective=objective(),
            seed=3,
            schedule=SCHEDULE,
            moves_per_temperature=moves,
        ).run()
        result.floorplan.validate()
        rows.append(
            [
                label,
                f"{result.breakdown.area / 1e6:.3f}",
                f"{100 * result.floorplan.whitespace_fraction:.1f}%",
                f"{result.breakdown.wirelength:.0f}",
                f"{result.breakdown.congestion:.5g}",
                f"{judge.judge(result.floorplan, circuit):.4f}",
                f"{result.runtime_seconds:.1f}",
            ]
        )
        print(f"finished {label}")
    print()
    print(
        format_table(
            [
                "representation",
                "area mm2",
                "whitespace",
                "WL um",
                "IR cost",
                "judged cgt",
                "time s",
            ],
            rows,
            title=f"Three floorplanners, one congestion model ({circuit_name})",
        )
    )
    print(
        "\nAll three optimize the identical objective; differences come"
        "\nfrom the representations' reachable packings and neighborhood"
        "\nstructure, not from the congestion model."
    )


if __name__ == "__main__":
    main()
