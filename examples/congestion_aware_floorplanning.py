"""Congestion-aware vs congestion-blind floorplanning (Experiment 1).

Run:  python examples/congestion_aware_floorplanning.py [circuit]

Anneals the same circuit twice -- once optimizing area+wirelength only,
once adding the Irregular-Grid congestion term -- judges both results
with a fine fixed grid, and writes side-by-side SVG heat maps so you can
*see* the hotspot the congestion term dissolves.
"""

import sys
from pathlib import Path

from repro import (
    AnnealEngine,
    FloorplanObjective,
    IrregularGridModel,
    JudgingModel,
    assign_pins,
    load_mcnc,
)
from repro.anneal import GeometricSchedule
from repro.viz import congestion_svg

SCHEDULE = GeometricSchedule(cooling_rate=0.85, freeze_ratio=1e-3, max_steps=30)


def anneal(circuit, gamma: float, grid_size: float, seed: int = 1):
    if gamma > 0:
        objective = FloorplanObjective(
            circuit,
            alpha=1.0,
            beta=1.0,
            gamma=gamma,
            congestion_model=IrregularGridModel(grid_size),
        )
    else:
        objective = FloorplanObjective(
            circuit, alpha=1.0, beta=1.0, pin_grid_size=grid_size
        )
    engine = AnnealEngine(
        circuit,
        objective=objective,
        seed=seed,
        schedule=SCHEDULE,
        moves_per_temperature=5 * circuit.n_modules,
    )
    return engine.run()


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "hp"
    circuit = load_mcnc(circuit_name)
    grid_size = 60.0 if circuit_name == "apte" else 30.0
    judge = JudgingModel(grid_size=10.0)
    out_dir = Path("examples_output")
    out_dir.mkdir(exist_ok=True)

    print(f"{circuit}: annealing two floorplanners...")
    results = {}
    for label, gamma in (("blind", 0.0), ("aware", 1.0)):
        result = anneal(circuit, gamma, grid_size)
        judged = judge.judge(result.floorplan, circuit)
        results[label] = (result, judged)
        print(
            f"  {label:5s}  area {result.breakdown.area / 1e6:8.3f} mm^2   "
            f"wirelength {result.breakdown.wirelength:9.0f} um   "
            f"judged congestion {judged:.5f}"
        )
        # Render the judged congestion heat map.
        cmap = judge.judge_map(result.floorplan, circuit)
        svg_path = out_dir / f"{circuit_name}_{label}.svg"
        svg_path.write_text(
            congestion_svg(cmap, px_width=720, floorplan=result.floorplan)
        )
        print(f"         heat map -> {svg_path}")

    blind_judged = results["blind"][1]
    aware_judged = results["aware"][1]
    if blind_judged > 0:
        gain = 100.0 * (blind_judged - aware_judged) / blind_judged
        print(
            f"\nJudged congestion change from adding the IR term: "
            f"{gain:+.1f}% (positive = improvement; paper Table 3 "
            f"reports 2-20% on the MCNC suite)"
        )


if __name__ == "__main__":
    main()
