"""Accuracy of the Theorem-1 approximation (Figure 8 and beyond).

Run:  python examples/model_accuracy_study.py

Reproduces the paper's Figure 8 comparison (exact Function (1) vs the
normal approximation on a 31x21 routing range), then sweeps routing-
range sizes to chart where the approximation's deviation peaks and how
much faster it is than the exact boundary sums at large sizes.
"""

import time

from repro.congestion import (
    ApproximationDomainError,
    approx_ir_probability,
    exact_ir_probability,
)
from repro.experiments.figures import figure8_default_cases
from repro.experiments.tables import format_table
from repro.netlist import NetType


def figure8() -> None:
    case_b, case_d = figure8_default_cases()
    for label, series in (
        ("(b) interior IR-grid, y2 = 15", case_b),
        ("(d) corner IR-grid, y2 = 19 (x = 30 is an error grid)", case_d),
    ):
        rows = [
            [
                p.x,
                f"{p.exact:.6f}",
                "n/a" if p.approx is None else f"{p.approx:.6f}",
                "n/a" if p.deviation is None else f"{p.deviation:.6f}",
            ]
            for p in series
        ]
        print(
            format_table(
                ["x", "exact", "approx", "|dev|"],
                rows,
                title=f"Figure 8 {label}",
            )
        )
        print()


def deviation_sweep() -> None:
    print("Worst-case interior deviation by routing-range size")
    rows = []
    for g in (6, 10, 16, 24, 40, 64):
        worst = 0.0
        for x1 in range(1, g - 2, max(1, g // 8)):
            for y1 in range(1, g - 2, max(1, g // 8)):
                x2 = min(x1 + g // 4, g - 2)
                y2 = min(y1 + g // 4, g - 2)
                exact = exact_ir_probability(g, g, NetType.TYPE_I, x1, x2, y1, y2)
                try:
                    approx = approx_ir_probability(
                        g, g, NetType.TYPE_I, x1, x2, y1, y2
                    )
                except ApproximationDomainError:
                    continue
                worst = max(worst, abs(approx - exact))
        rows.append([f"{g}x{g}", f"{worst:.4f}"])
    print(format_table(["range", "max |dev|"], rows))
    print()


def timing_sweep() -> None:
    print("Per-IR-grid evaluation cost: exact sum vs constant-time approx")
    rows = []
    for g in (10, 30, 100, 300):
        x1, y1 = 1, 1
        x2 = y2 = g // 2
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            exact_ir_probability(g, g, NetType.TYPE_I, x1, x2, y1, y2)
        exact_us = (time.perf_counter() - t0) / n * 1e6
        t0 = time.perf_counter()
        for _ in range(n):
            approx_ir_probability(g, g, NetType.TYPE_I, x1, x2, y1, y2)
        approx_us = (time.perf_counter() - t0) / n * 1e6
        rows.append(
            [
                f"{g}x{g}",
                f"{exact_us:.1f}",
                f"{approx_us:.1f}",
                f"{exact_us / approx_us:.2f}x",
            ]
        )
    print(
        format_table(
            ["range", "exact us", "approx us", "speedup"],
            rows,
        )
    )
    print(
        "\nThe exact boundary sum grows linearly with the IR-grid's span;"
        "\nthe Simpson-rule approximation stays flat -- the paper's"
        "\nconstant-time claim (Section 4.4)."
    )


def main() -> None:
    figure8()
    deviation_sweep()
    timing_sweep()


if __name__ == "__main__":
    main()
