"""Hotspot attribution: which nets make the floorplan congested?

Run:  python examples/hotspot_analysis.py [circuit]

After estimating a floorplan's congestion, a designer's next question
is *why*: which IR-grids are the hottest and which nets put the
probability mass there.  This example anneals a floorplan, runs the
Irregular-Grid model, and prints a ranked hotspot report with per-net
attribution -- the nets worth rerouting, replicating, or re-clustering.
"""

import sys

from repro import (
    AnnealEngine,
    FloorplanObjective,
    IrregularGridModel,
    analyze_hotspots,
    assign_pins,
    load_mcnc,
)
from repro.anneal import GeometricSchedule
from repro.experiments.tables import format_table


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "ami33"
    circuit = load_mcnc(circuit_name)
    grid_size = 60.0 if circuit_name == "apte" else 30.0

    engine = AnnealEngine(
        circuit,
        objective=FloorplanObjective(circuit, alpha=1.0, beta=1.0),
        seed=2,
        schedule=GeometricSchedule(cooling_rate=0.85, freeze_ratio=1e-2, max_steps=25),
        moves_per_temperature=4 * circuit.n_modules,
    )
    floorplan = engine.run().floorplan
    assignment = assign_pins(floorplan, circuit, grid_size)

    model = IrregularGridModel(grid_size)
    report = analyze_hotspots(
        model,
        floorplan.chip,
        assignment.two_pin_nets,
        top_cells=5,
        top_nets_per_cell=4,
    )

    rows = []
    for rank, cell in enumerate(report.cells, start=1):
        r = cell.rect
        nets_desc = ", ".join(
            f"{name}:{amount:.2f}" for name, amount in cell.contributors
        )
        rows.append(
            [
                rank,
                f"[{r.x_lo:.0f},{r.y_lo:.0f}]-[{r.x_hi:.0f},{r.y_hi:.0f}]",
                f"{cell.density:.4g}",
                nets_desc,
            ]
        )
    print(
        format_table(
            ["#", "IR-grid (um)", "density", "top contributing 2-pin nets"],
            rows,
            title=f"Hotspot report for {circuit_name}",
        )
    )

    print("\nNets dominating the hotspots overall:")
    for name, total in report.dominant_nets(5):
        print(f"  {name:20s} total contribution {total:.3f}")
    print(
        "\n(2-pin net names are <source net>#<mst edge>; the source net"
        "\nis the multi-pin net to revisit.)"
    )


if __name__ == "__main__":
    main()
