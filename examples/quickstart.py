"""Quickstart: floorplan a circuit and estimate its congestion.

Run:  python examples/quickstart.py [circuit]

Loads one of the bundled MCNC-like circuits (default ami33), anneals a
slicing floorplan for area+wirelength, then evaluates the Irregular-Grid
congestion model on the result and prints the floorplan, the congestion
heat map, and the headline numbers.
"""

import sys

from repro import (
    AnnealEngine,
    FloorplanObjective,
    IrregularGridModel,
    JudgingModel,
    assign_pins,
    load_mcnc,
)
from repro.anneal import GeometricSchedule
from repro.viz import render_congestion_ascii, render_floorplan_ascii


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "ami33"
    circuit = load_mcnc(circuit_name)
    print(f"Loaded {circuit}")

    # A short schedule keeps the example snappy; bump max_steps and
    # moves_per_temperature for production-quality floorplans.
    engine = AnnealEngine(
        circuit,
        representation="polish",
        objective=FloorplanObjective(circuit, alpha=1.0, beta=1.0),
        seed=1,
        schedule=GeometricSchedule(cooling_rate=0.85, freeze_ratio=1e-3, max_steps=30),
        moves_per_temperature=5 * circuit.n_modules,
    )
    result = engine.run()
    floorplan = result.floorplan
    print(
        f"Annealed in {result.runtime_seconds:.1f}s over {result.n_moves} "
        f"moves (acceptance {100 * result.acceptance_ratio:.0f}%)"
    )
    print(f"  area        {result.breakdown.area / 1e6:.3f} mm^2")
    print(f"  wirelength  {result.breakdown.wirelength:.0f} um")
    print(f"  whitespace  {100 * floorplan.whitespace_fraction:.1f}%")

    print()
    print(render_floorplan_ascii(floorplan, width=64))

    # Estimate congestion with the paper's Irregular-Grid model.
    grid_size = 60.0 if circuit_name == "apte" else 30.0
    assignment = assign_pins(floorplan, circuit, grid_size)
    model = IrregularGridModel(grid_size)
    congestion_map, irgrid = model.evaluate_with_grid(
        floorplan.chip, assignment.two_pin_nets
    )
    print()
    print(
        f"Irregular-Grid model ({grid_size:g} um units): "
        f"{irgrid.n_cells} IR-grids, congestion cost "
        f"{model.score(congestion_map):.6g}"
    )
    judge = JudgingModel(grid_size=10.0)
    print(f"Judging model (10 um fixed grid): {judge.judge(floorplan, circuit):.6g}")

    print()
    print(render_congestion_ascii(congestion_map, width=64))


if __name__ == "__main__":
    main()
