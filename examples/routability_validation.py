"""Validating congestion estimates against an actual global router.

Run:  python examples/routability_validation.py [circuit]

The paper validates its model against a very fine fixed-grid estimate
(the "judging model").  This example goes one step further: it actually
*routes* every 2-pin net on a capacitated grid with a congestion-aware
monotone router, then checks how well the probabilistic models'
per-cell estimates rank-correlate with the router's measured track
utilization -- across several floorplans of varying quality.
"""

import random
import sys

from repro import (
    FixedGridModel,
    assign_pins,
    evaluate_polish,
    initial_expression,
    load_mcnc,
)
from repro.experiments.tables import format_table
from repro.routing import GlobalRouter, RoutingGrid, overflow_report
from repro.routing.overflow import rank_correlation


def validate_one(circuit, seed: int, cell_size: float):
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(seed)
    expr = initial_expression(list(modules), rng)
    for _ in range(20 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, cell_size)

    # Route for real.
    grid = RoutingGrid(floorplan.chip, cell_size=cell_size, capacity=24)
    GlobalRouter(grid, strategy="monotone").route(assignment.two_pin_nets)
    routed_util = grid.cell_utilization()
    report = overflow_report(grid)

    # Estimate probabilistically at the same pitch.
    model = FixedGridModel(cell_size)
    estimate = model.evaluate_array(floorplan.chip, assignment.two_pin_nets)

    n_c = min(routed_util.shape[0], estimate.shape[0])
    n_r = min(routed_util.shape[1], estimate.shape[1])
    corr = rank_correlation(
        routed_util[:n_c, :n_r].ravel(), estimate[:n_c, :n_r].ravel()
    )
    return corr, report


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "ami33"
    circuit = load_mcnc(circuit_name)
    cell_size = 60.0 if circuit_name == "apte" else 50.0
    print(f"{circuit}: routing 5 random floorplans at {cell_size:g} um cells\n")

    rows = []
    for seed in range(5):
        corr, report = validate_one(circuit, seed, cell_size)
        rows.append(
            [
                seed,
                f"{corr:.3f}",
                f"{report.max_utilization:.2f}",
                f"{report.mean_utilization:.3f}",
                report.n_overflowed_edges,
            ]
        )
    print(
        format_table(
            [
                "floorplan seed",
                "rank corr (est vs routed)",
                "max util",
                "mean util",
                "overflowed edges",
            ],
            rows,
        )
    )
    print(
        "\nA rank correlation well above 0.5 means the probabilistic"
        "\nestimate identifies the same hot regions a real router"
        "\nexperiences -- the premise behind using it inside the"
        "\nfloorplanning loop."
    )


if __name__ == "__main__":
    main()
